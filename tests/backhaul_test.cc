#include "backhaul/network.h"
#include "backhaul/signaling.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "geom/linear_topology.h"
#include "util/check.h"

namespace pabr::backhaul {
namespace {

TEST(InterconnectTest, StarRoutesViaMscTwoHops) {
  InterconnectModel m(InterconnectKind::kStarMsc);
  EXPECT_EQ(m.hops_between(0, 1), 2);
  EXPECT_EQ(m.hops_between(3, 9), 2);
  EXPECT_EQ(m.hops_between(4, 4), 0);
}

TEST(InterconnectTest, FullMeshIsOneHop) {
  InterconnectModel m(InterconnectKind::kFullyConnected);
  EXPECT_EQ(m.hops_between(0, 1), 1);
  EXPECT_EQ(m.hops_between(4, 4), 0);
}

TEST(InterconnectTest, LatencyScalesWithHops) {
  InterconnectModel star(InterconnectKind::kStarMsc, 0.005);
  InterconnectModel mesh(InterconnectKind::kFullyConnected, 0.005);
  EXPECT_DOUBLE_EQ(star.latency_between(0, 1), 0.010);
  EXPECT_DOUBLE_EQ(mesh.latency_between(0, 1), 0.005);
}

TEST(InterconnectTest, RecordAccumulatesByType) {
  InterconnectModel m(InterconnectKind::kStarMsc);
  m.record(0, 1, MessageType::kBandwidthQuery);
  m.record(1, 0, MessageType::kBandwidthReply);
  m.record(0, 1, MessageType::kBandwidthQuery);
  EXPECT_EQ(m.messages(MessageType::kBandwidthQuery), 2u);
  EXPECT_EQ(m.messages(MessageType::kBandwidthReply), 1u);
  EXPECT_EQ(m.messages(MessageType::kHandoffSignal), 0u);
  EXPECT_EQ(m.total_messages(), 3u);
  EXPECT_EQ(m.total_hops(), 6u);  // 3 messages x 2 hops
}

TEST(InterconnectTest, ResetClearsCounters) {
  InterconnectModel m(InterconnectKind::kFullyConnected);
  m.record(0, 1, MessageType::kHandoffSignal);
  m.reset();
  EXPECT_EQ(m.total_messages(), 0u);
  EXPECT_EQ(m.total_hops(), 0u);
}

TEST(InterconnectTest, DescribeAndNames) {
  EXPECT_NE(InterconnectModel(InterconnectKind::kStarMsc).describe().find(
                "MSC"),
            std::string::npos);
  EXPECT_STREQ(message_type_name(MessageType::kBandwidthQuery),
               "bandwidth_query");
}

class SignalingTest : public ::testing::Test {
 protected:
  geom::LinearTopology road_{10, 1.0, true};
  InterconnectModel net_{InterconnectKind::kFullyConnected};
  SignalingAccountant acc_{road_, &net_};
};

TEST_F(SignalingTest, NCalcAveragesPerAdmission) {
  acc_.begin_admission();
  acc_.record_br_calculation(0);
  acc_.end_admission();

  acc_.begin_admission();
  acc_.record_br_calculation(0);
  acc_.record_br_calculation(1);
  acc_.record_br_calculation(9);
  acc_.end_admission();

  EXPECT_DOUBLE_EQ(acc_.n_calc(), 2.0);  // (1 + 3) / 2
  EXPECT_EQ(acc_.admissions_observed(), 2u);
  EXPECT_EQ(acc_.total_br_calculations(), 4u);
}

TEST_F(SignalingTest, EachCalculationSignalsAllNeighbors) {
  acc_.begin_admission();
  acc_.record_br_calculation(5);
  acc_.end_admission();
  // 2 neighbours x (announce + query + reply).
  EXPECT_EQ(net_.total_messages(), 6u);
  EXPECT_EQ(net_.messages(MessageType::kTestWindowAnnounce), 2u);
  EXPECT_EQ(net_.messages(MessageType::kBandwidthQuery), 2u);
  EXPECT_EQ(net_.messages(MessageType::kBandwidthReply), 2u);
}

TEST_F(SignalingTest, CalculationOutsideAdmissionCountsTotalOnly) {
  acc_.record_br_calculation(3);
  EXPECT_EQ(acc_.total_br_calculations(), 1u);
  EXPECT_EQ(acc_.admissions_observed(), 0u);
  EXPECT_DOUBLE_EQ(acc_.n_calc(), 0.0);
}

TEST_F(SignalingTest, NestedBeginThrows) {
  acc_.begin_admission();
  EXPECT_THROW(acc_.begin_admission(), InvariantError);
}

TEST_F(SignalingTest, EndWithoutBeginThrows) {
  EXPECT_THROW(acc_.end_admission(), InvariantError);
}

TEST_F(SignalingTest, AdmissionScopeBalancesOnException) {
  // A policy that throws mid-admission must not leave the accountant
  // open: the next admission would then trip the nesting check (or,
  // worse, silently merge its calculations into the leaked one).
  EXPECT_FALSE(acc_.admission_open());
  try {
    AdmissionScope scope(acc_);
    EXPECT_TRUE(acc_.admission_open());
    acc_.record_br_calculation(0);
    throw std::runtime_error("policy blew up");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(acc_.admission_open());
  EXPECT_EQ(acc_.admissions_observed(), 1u);
  // The accountant is immediately usable for the next admission.
  {
    AdmissionScope scope(acc_);
    acc_.record_br_calculation(1);
    EXPECT_EQ(acc_.in_flight(), 1);
  }
  EXPECT_EQ(acc_.admissions_observed(), 2u);
  EXPECT_DOUBLE_EQ(acc_.n_calc(), 1.0);
}

TEST_F(SignalingTest, RejectionPathStillCountsTowardNCalc) {
  // An admission test that ends in rejection is still one N_calc sample
  // — the paper's metric averages over admission *tests*, not grants.
  {
    AdmissionScope scope(acc_);
    acc_.record_br_calculation(2);
    acc_.record_br_calculation(3);
    // (policy returns false here; no connection is started)
  }
  {
    AdmissionScope scope(acc_);  // zero-calculation test (e.g. NS-DCA)
  }
  EXPECT_EQ(acc_.admissions_observed(), 2u);
  EXPECT_DOUBLE_EQ(acc_.n_calc(), 1.0);  // (2 + 0) / 2
}

TEST_F(SignalingTest, NullInterconnectIsAllowed) {
  SignalingAccountant acc(road_, nullptr);
  acc.begin_admission();
  acc.record_br_calculation(0);
  acc.end_admission();
  EXPECT_DOUBLE_EQ(acc.n_calc(), 1.0);
}

TEST_F(SignalingTest, ResetZeroesEverything) {
  acc_.begin_admission();
  acc_.record_br_calculation(0);
  acc_.end_admission();
  acc_.reset();
  EXPECT_DOUBLE_EQ(acc_.n_calc(), 0.0);
  EXPECT_EQ(acc_.total_br_calculations(), 0u);
}

}  // namespace
}  // namespace pabr::backhaul
