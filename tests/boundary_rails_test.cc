// Numeric-boundary rail regressions for the two §5.3 / §4.2 feedback
// controllers:
//
//  * Retry persistence p = 1 − giveup_step·N_ret must clamp at the 0 rail
//    (past N_ret = 10 with the paper's 0.1 step the raw expression is
//    negative) and the rail must not consume from the RNG stream.
//  * The Fig. 6 T_est ±1 s controller must pin at its configured
//    [t_min, t_max] bounds no matter how many same-direction adjustments
//    the drop/window feedback pushes.
#include <gtest/gtest.h>

#include "reservation/test_window.h"
#include "sim/random.h"
#include "sim/time.h"
#include "traffic/retry.h"

namespace pabr {
namespace {

TEST(RetryRailTest, PersistenceClampsAtZeroBeyondTenAttempts) {
  traffic::RetryConfig cfg;
  cfg.enabled = true;
  traffic::RetryPolicy policy(cfg, sim::Rng{1});
  EXPECT_DOUBLE_EQ(policy.retry_probability(1), 0.9);
  EXPECT_DOUBLE_EQ(policy.retry_probability(9), 1.0 - 0.9);
  EXPECT_DOUBLE_EQ(policy.retry_probability(10), 0.0);
  // Raw 1 - 0.1·N goes negative here; the rail must hold it at 0 so the
  // bernoulli draw never sees p < 0.
  EXPECT_DOUBLE_EQ(policy.retry_probability(11), 0.0);
  EXPECT_DOUBLE_EQ(policy.retry_probability(1000000), 0.0);
}

TEST(RetryRailTest, RailedRetryDoesNotConsumeRngStream) {
  traffic::RetryConfig cfg;
  cfg.enabled = true;
  traffic::RetryPolicy policy(cfg, sim::Rng{42});
  // At the rail should_retry must short-circuit without touching the
  // stream: the next real draw has to match a fresh stream's first draw.
  EXPECT_FALSE(policy.should_retry(10));
  EXPECT_FALSE(policy.should_retry(50));
  sim::Rng fresh{42};
  const bool expected = fresh.bernoulli(0.9);
  EXPECT_EQ(policy.should_retry(1), expected);
}

TEST(RetryRailTest, DisabledPolicyNeverRetries) {
  traffic::RetryPolicy policy(traffic::RetryConfig{}, sim::Rng{7});
  EXPECT_DOUBLE_EQ(policy.retry_probability(1), 0.0);
  EXPECT_FALSE(policy.should_retry(1));
}

TEST(TestWindowRailTest, WideningPinsAtConfiguredTMax) {
  reservation::TestWindowConfig cfg;
  cfg.phd_target = 1.0;  // W = 1: every drop beyond the quota widens
  cfg.t_start = 1.0;
  cfg.t_max = 4.0;
  reservation::TestWindowController ctl(cfg);
  const sim::Duration unbounded_soj = 1e9;  // dynamic bound not binding
  for (int i = 0; i < 100; ++i) ctl.on_handoff(/*dropped=*/true, unbounded_soj);
  EXPECT_DOUBLE_EQ(ctl.t_est(), 4.0);  // pinned, not 1 + 100
}

TEST(TestWindowRailTest, DynamicSojournBoundStillBindsBelowTMax) {
  reservation::TestWindowConfig cfg;
  cfg.phd_target = 1.0;
  cfg.t_max = 50.0;
  reservation::TestWindowController ctl(cfg);
  for (int i = 0; i < 100; ++i) ctl.on_handoff(/*dropped=*/true, 3.0);
  EXPECT_DOUBLE_EQ(ctl.t_est(), 3.0);  // T_soj,max is the tighter rail
}

TEST(TestWindowRailTest, NarrowingPinsAtTMin) {
  reservation::TestWindowConfig cfg;
  cfg.phd_target = 1.0;  // W_obs = 1: every clean hand-off pair narrows
  cfg.t_start = 3.0;
  cfg.t_min = 2.0;
  reservation::TestWindowController ctl(cfg);
  for (int i = 0; i < 100; ++i) ctl.on_handoff(/*dropped=*/false, 1e9);
  EXPECT_DOUBLE_EQ(ctl.t_est(), 2.0);  // pinned at t_min, never below
}

TEST(TestWindowRailTest, DefaultTMaxIsUnbounded) {
  reservation::TestWindowConfig cfg;
  EXPECT_EQ(cfg.t_max, sim::kInfiniteDuration);
  cfg.phd_target = 1.0;
  reservation::TestWindowController ctl(cfg);
  // The first drop sits inside the quota (n_HD > W_obs/W is strict), so
  // 50 drops widen 49 times from T_start = 1.
  for (int i = 0; i < 50; ++i) ctl.on_handoff(/*dropped=*/true, 1e9);
  EXPECT_DOUBLE_EQ(ctl.t_est(), 50.0);  // default trajectory unchanged
}

TEST(TestWindowRailTest, MultiplicativeStepsStillRespectTMax) {
  reservation::TestWindowConfig cfg;
  cfg.phd_target = 1.0;
  cfg.t_max = 10.0;
  cfg.step_policy = reservation::StepPolicy::kMultiplicative;
  reservation::TestWindowController ctl(cfg);
  for (int i = 0; i < 40; ++i) ctl.on_handoff(/*dropped=*/true, 1e9);
  EXPECT_DOUBLE_EQ(ctl.t_est(), 10.0);  // 1+1+2+4+8 overshoots; rail holds
}

}  // namespace
}  // namespace pabr
