// Adaptive-QoS (§1) and CDMA soft-capacity (§7) extension behaviour.
#include <gtest/gtest.h>

#include "core/system.h"
#include "util/check.h"

namespace pabr::core {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.policy = admission::PolicyKind::kStatic;
  cfg.static_g = 0.0;
  cfg.workload.arrival_rate_per_cell = 0.0;
  return cfg;
}

traffic::ConnectionRequest make_request(
    traffic::ConnectionId id, geom::CellId cell, double pos, int dir,
    double speed,
    traffic::ServiceClass svc = traffic::ServiceClass::kVideo,
    double lifetime = 1e6) {
  traffic::ConnectionRequest r;
  r.id = id;
  r.cell = cell;
  r.position_km = pos;
  r.direction = dir;
  r.speed_kmh = speed;
  r.service = svc;
  r.lifetime_s = lifetime;
  return r;
}

void fill_cell(CellularSystem& sys, geom::CellId cell, int voice_count,
               traffic::ConnectionId base_id = 1000) {
  for (int i = 0; i < voice_count; ++i) {
    ASSERT_TRUE(sys.submit_request(make_request(
        base_id + static_cast<traffic::ConnectionId>(i), cell,
        static_cast<double>(cell) + 0.5, +1, 0.0,
        traffic::ServiceClass::kVoice)));
  }
}

// ---- Adaptive QoS -----------------------------------------------------

TEST(AdaptiveQosTest, VideoHandoffDegradesInsteadOfDropping) {
  SystemConfig cfg = quiet_config();
  cfg.adaptive_qos = true;
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 97);  // 3 BU free: a 4-BU video cannot fit, 2 BU can
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0));
  sys.run_for(10.0);
  // Not dropped: degraded to the 2-BU minimum.
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 0u);
  EXPECT_EQ(sys.cell_metrics(4).degrades.count(), 1u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 99.0);  // 97 + 2
  EXPECT_EQ(sys.active_connections(), 98u);
}

TEST(AdaptiveQosTest, WithoutAdaptiveQosSameHandoffDrops) {
  SystemConfig cfg = quiet_config();
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 97);
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0));
  sys.run_for(10.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
  EXPECT_EQ(sys.cell_metrics(4).degrades.count(), 0u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 97.0);
}

TEST(AdaptiveQosTest, DegradedVideoUpgradesInRoomyCell) {
  SystemConfig cfg = quiet_config();
  cfg.adaptive_qos = true;
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 97);
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0));
  sys.run_for(10.0);  // degraded into cell 4 (2 BU)
  ASSERT_EQ(sys.cell_metrics(4).degrades.count(), 1u);
  // Cell 5 is empty: the next hand-off restores full QoS.
  sys.run_for(40.0);
  EXPECT_EQ(sys.cell_metrics(5).upgrades.count(), 1u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(5), 4.0);
}

TEST(AdaptiveQosTest, VoiceCannotDegrade) {
  SystemConfig cfg = quiet_config();
  cfg.adaptive_qos = true;
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 100);  // completely full
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0,
                                  traffic::ServiceClass::kVoice));
  sys.run_for(10.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);  // dropped
  EXPECT_EQ(sys.cell_metrics(4).degrades.count(), 0u);
}

TEST(AdaptiveQosTest, FullCellStillDropsEvenWithAdaptiveQos) {
  SystemConfig cfg = quiet_config();
  cfg.adaptive_qos = true;
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 99);  // 1 BU free < video minimum of 2
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0));
  sys.run_for(10.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
}

TEST(AdaptiveQosTest, ReservationUsesMinimumQos) {
  SystemConfig cfg = quiet_config();
  cfg.policy = admission::PolicyKind::kAc1;
  cfg.adaptive_qos = true;
  cfg.t_start = 100.0;
  CellularSystem sys(cfg);
  // A full-QoS video connection in cell 1 with certain hand-off history.
  sys.submit_request(make_request(1, 1, 1.5, +1, 0.0));
  sys.run_for(1.0);
  sys.base_station(1).estimator().record({sys.now(), 1, 0, 30.0});
  // §1: reserve based on the minimum QoS (2 BU), not the granted 4 BU.
  EXPECT_NEAR(sys.recompute_reservation(0), 2.0, 1e-9);
}

TEST(AdaptiveQosTest, SystemStatusAggregatesDegrades) {
  SystemConfig cfg = quiet_config();
  cfg.adaptive_qos = true;
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 97);
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0));
  sys.run_for(50.0);
  const auto s = sys.system_status();
  EXPECT_EQ(s.degrades, 1u);
  EXPECT_EQ(s.upgrades, 1u);  // restored when entering empty cell 5
}

// ---- Soft capacity ------------------------------------------------------

TEST(SoftCapacityTest, HandoffMayStretchPastHardCapacity) {
  SystemConfig cfg = quiet_config();
  cfg.soft_capacity_margin = 0.05;  // hand-offs may reach 105 BU
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 100);
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0));
  sys.run_for(10.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 0u);  // absorbed, not dropped
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 104.0);
  EXPECT_TRUE(sys.cell(4).overloaded());
}

TEST(SoftCapacityTest, MarginExhaustedStillDrops) {
  SystemConfig cfg = quiet_config();
  cfg.soft_capacity_margin = 0.02;  // ceiling 102 BU
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 100);
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0));  // needs 4 > 2
  sys.run_for(10.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
}

TEST(SoftCapacityTest, NewCallsNeverUseTheMargin) {
  SystemConfig cfg = quiet_config();
  cfg.soft_capacity_margin = 0.10;
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 100);
  // New request in the full cell: blocked despite the soft margin.
  EXPECT_FALSE(sys.submit_request(make_request(1, 4, 4.5, +1, 0.0,
                                               traffic::ServiceClass::kVoice)));
}

TEST(SoftCapacityTest, OverloadFractionTracked) {
  SystemConfig cfg = quiet_config();
  cfg.soft_capacity_margin = 0.05;
  CellularSystem sys(cfg);
  fill_cell(sys, 4, 100);
  // Hand a video in (overload), then let everything sit.
  sys.submit_request(make_request(1, 3, 3.9, +1, 100.0,
                                  traffic::ServiceClass::kVideo, 1e6));
  sys.run_for(100.0);
  EXPECT_GT(sys.system_status().overload_frac, 0.0);
  // The video sits in cell 4 for its ~36 s transit out of the first 100 s.
  EXPECT_NEAR(sys.cell_metrics(4).overload.mean(sys.now()), 0.36, 0.05);
}

TEST(SoftCapacityTest, ZeroMarginMatchesBaseline) {
  SystemConfig a = quiet_config();
  SystemConfig b = quiet_config();
  b.soft_capacity_margin = 0.0;
  CellularSystem sa(a);
  CellularSystem sb(b);
  EXPECT_DOUBLE_EQ(sa.cell(0).soft_capacity(), sb.cell(0).soft_capacity());
}

}  // namespace
}  // namespace pabr::core
