#include "core/cell.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::core {
namespace {

TEST(CellTest, StartsEmpty) {
  Cell c(0, 100.0);
  EXPECT_EQ(c.id(), 0);
  EXPECT_DOUBLE_EQ(c.capacity(), 100.0);
  EXPECT_DOUBLE_EQ(c.used(), 0.0);
  EXPECT_DOUBLE_EQ(c.free(), 100.0);
  EXPECT_EQ(c.connection_count(), 0);
}

TEST(CellTest, AttachDetachTracksBandwidth) {
  Cell c(0, 100.0);
  c.attach(1, 4);
  c.attach(2, 1);
  EXPECT_DOUBLE_EQ(c.used(), 5.0);
  EXPECT_EQ(c.connection_count(), 2);
  c.detach(1);
  EXPECT_DOUBLE_EQ(c.used(), 1.0);
  c.detach(2);
  EXPECT_DOUBLE_EQ(c.used(), 0.0);
}

TEST(CellTest, CanFitRespectsCapacityOnly) {
  Cell c(0, 10.0);
  c.attach(1, 6);
  EXPECT_TRUE(c.can_fit(4));
  EXPECT_FALSE(c.can_fit(5));
}

TEST(CellTest, FillToExactCapacity) {
  Cell c(0, 8.0);
  c.attach(1, 4);
  c.attach(2, 4);
  EXPECT_DOUBLE_EQ(c.free(), 0.0);
  EXPECT_FALSE(c.can_fit(1));
}

TEST(CellTest, OverfillThrows) {
  Cell c(0, 4.0);
  c.attach(1, 4);
  EXPECT_THROW(c.attach(2, 1), InvariantError);
}

TEST(CellTest, DuplicateAttachThrows) {
  Cell c(0, 100.0);
  c.attach(1, 4);
  EXPECT_THROW(c.attach(1, 4), InvariantError);
}

TEST(CellTest, DetachUnknownThrows) {
  Cell c(0, 100.0);
  EXPECT_THROW(c.detach(42), InvariantError);
}

TEST(CellTest, ConnectionsIterateInIdOrder) {
  Cell c(0, 100.0);
  c.attach(5, 1);
  c.attach(2, 4);
  c.attach(9, 1);
  std::vector<traffic::ConnectionId> ids;
  for (const auto& entry : c.connections()) ids.push_back(entry.id);
  EXPECT_EQ(ids, (std::vector<traffic::ConnectionId>{2, 5, 9}));
}

TEST(CellTest, NonPositiveValuesRejected) {
  EXPECT_THROW(Cell(0, 0.0), InvariantError);
  Cell c(0, 10.0);
  EXPECT_THROW(c.attach(1, 0), InvariantError);
}

}  // namespace
}  // namespace pabr::core
