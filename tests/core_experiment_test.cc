#include "core/experiment.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::core {
namespace {

TEST(ExperimentTest, RunSystemProducesConsistentSnapshot) {
  StationaryParams p;
  p.offered_load = 100.0;
  RunPlan plan;
  plan.warmup_s = 100.0;
  plan.measure_s = 300.0;
  const auto r = run_system(stationary_config(p), plan);
  EXPECT_EQ(r.cells.size(), 10u);
  EXPECT_GT(r.status.requests, 0u);
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.wall_seconds, 0.0);
  // Aggregate request count equals the per-cell sum.
  std::uint64_t sum = 0;
  for (const auto& c : r.cells) sum += c.requests;
  EXPECT_EQ(sum, r.status.requests);
  // Cells are numbered 1..10 in paper style.
  EXPECT_EQ(r.cells.front().cell, 1);
  EXPECT_EQ(r.cells.back().cell, 10);
}

TEST(ExperimentTest, NoResetKeepsWarmupSamples) {
  StationaryParams p;
  p.offered_load = 100.0;
  RunPlan with_reset;
  with_reset.warmup_s = 200.0;
  with_reset.measure_s = 200.0;
  RunPlan no_reset = with_reset;
  no_reset.reset_after_warmup = false;
  const auto a = run_system(stationary_config(p), with_reset);
  const auto b = run_system(stationary_config(p), no_reset);
  EXPECT_LT(a.status.requests, b.status.requests);
}

TEST(ExperimentTest, SweepRunsEveryLoad) {
  RunPlan plan;
  plan.warmup_s = 50.0;
  plan.measure_s = 100.0;
  const std::vector<double> loads{60.0, 120.0};
  const auto points = sweep_loads(
      loads,
      [](double load) {
        StationaryParams p;
        p.offered_load = load;
        return stationary_config(p);
      },
      plan);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_DOUBLE_EQ(points[0].offered_load, 60.0);
  EXPECT_DOUBLE_EQ(points[1].offered_load, 120.0);
  EXPECT_GT(points[1].result.status.requests,
            points[0].result.status.requests);
}

TEST(ExperimentTest, PaperLoadGridCoversPaperRange) {
  const auto grid = paper_load_grid();
  EXPECT_DOUBLE_EQ(grid.front(), 60.0);
  EXPECT_DOUBLE_EQ(grid.back(), 300.0);
  for (std::size_t i = 1; i < grid.size(); ++i) {
    EXPECT_GT(grid[i], grid[i - 1]);
  }
}

TEST(ExperimentTest, ReplicatedRunsAggregateSeeds) {
  StationaryParams p;
  p.offered_load = 150.0;
  p.seed = 10;
  RunPlan plan;
  plan.warmup_s = 100.0;
  plan.measure_s = 300.0;
  const auto rep = run_replicated(stationary_config(p), plan, 3);
  ASSERT_EQ(rep.runs.size(), 3u);
  ASSERT_EQ(rep.pcb.samples.size(), 3u);
  // Seeds differ, so the replications are not identical...
  EXPECT_NE(rep.runs[0].status.requests, rep.runs[1].status.requests);
  // ...and the mean matches the samples.
  const double manual = (rep.pcb.samples[0] + rep.pcb.samples[1] +
                         rep.pcb.samples[2]) /
                        3.0;
  EXPECT_NEAR(rep.pcb.mean, manual, 1e-12);
  EXPECT_GT(rep.pcb.ci95, 0.0);
  EXPECT_GE(rep.phd.mean, 0.0);
}

TEST(ExperimentTest, ReplicatedSingleSeedHasZeroCi) {
  StationaryParams p;
  p.offered_load = 100.0;
  RunPlan plan;
  plan.warmup_s = 50.0;
  plan.measure_s = 100.0;
  const auto rep = run_replicated(stationary_config(p), plan, 1);
  EXPECT_DOUBLE_EQ(rep.pcb.ci95, 0.0);
  EXPECT_THROW(run_replicated(stationary_config(p), plan, 0),
               InvariantError);
}

TEST(TablePrinterTest, ProbabilityFormat) {
  EXPECT_EQ(TablePrinter::prob(0.0), "0");
  EXPECT_EQ(TablePrinter::prob(6.53e-3), "6.53e-03");
  EXPECT_EQ(TablePrinter::prob(0.806), "8.06e-01");
}

TEST(TablePrinterTest, FixedAndInteger) {
  EXPECT_EQ(TablePrinter::fixed(5.626, 2), "5.63");
  EXPECT_EQ(TablePrinter::fixed(5.0, 0), "5");
  EXPECT_EQ(TablePrinter::integer(42), "42");
}

TEST(TablePrinterTest, MismatchedColumnsThrow) {
  TablePrinter t({"a", "b"}, {5, 5});
  EXPECT_THROW(t.print_row({"only-one"}), InvariantError);
  EXPECT_THROW(TablePrinter({"a"}, {5, 5}), InvariantError);
}

TEST(TablePrinterTest, PrintsWithoutCrashing) {
  TablePrinter t({"cell", "pcb"}, {6, 10});
  t.print_header();
  t.print_row({"1", TablePrinter::prob(0.123)});
  t.print_rule();
}

}  // namespace
}  // namespace pabr::core
