// Tests for the paper's §7 extension hooks wired into CellularSystem:
// ITS/GPS route knowledge and the §4.2 step-policy plumbing.
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/system.h"
#include "util/check.h"

namespace pabr::core {
namespace {

SystemConfig quiet_config() {
  SystemConfig cfg;
  cfg.policy = admission::PolicyKind::kAc1;
  cfg.static_g = 0.0;
  cfg.workload.arrival_rate_per_cell = 0.0;
  cfg.t_start = 100.0;  // wide T_est so sojourn windows are easy to hit
  return cfg;
}

traffic::ConnectionRequest video_request(traffic::ConnectionId id,
                                         geom::CellId cell, double pos,
                                         int dir) {
  traffic::ConnectionRequest r;
  r.id = id;
  r.cell = cell;
  r.position_km = pos;
  r.direction = dir;
  r.speed_kmh = 0.0;  // parked: we drive the estimators by hand
  r.service = traffic::ServiceClass::kVideo;
  r.lifetime_s = 1e6;
  return r;
}

TEST(GpsExtensionTest, KnownRouteConcentratesReservation) {
  SystemConfig cfg = quiet_config();
  cfg.known_route_fraction = 1.0;  // every mobile's direction is known
  CellularSystem sys(cfg);

  // A video mobile camped in cell 1 heading in +1 direction (toward cell
  // 2, AWAY from cell 0).
  sys.submit_request(video_request(1, 1, 1.5, +1));
  sys.run_for(1.0);
  // History in cell 1: started-here mobiles depart (half to 0, half to 2).
  sys.base_station(1).estimator().record({sys.now(), 1, 0, 30.0});
  sys.base_station(1).estimator().record({sys.now(), 1, 2, 30.0});

  // Without route knowledge this mobile would contribute to BOTH
  // neighbours (p = 1/2 each). With its direction known it contributes
  // only toward cell 2, with the sojourn-only probability (= 1 here).
  EXPECT_DOUBLE_EQ(sys.recompute_reservation(0), 0.0);
  EXPECT_NEAR(sys.recompute_reservation(2), 4.0, 1e-9);
}

TEST(GpsExtensionTest, UnknownRouteSplitsByEstimatedDirection) {
  SystemConfig cfg = quiet_config();
  cfg.known_route_fraction = 0.0;
  CellularSystem sys(cfg);
  sys.submit_request(video_request(1, 1, 1.5, +1));
  sys.run_for(1.0);
  sys.base_station(1).estimator().record({sys.now(), 1, 0, 30.0});
  sys.base_station(1).estimator().record({sys.now(), 1, 2, 30.0});
  EXPECT_NEAR(sys.recompute_reservation(0), 2.0, 1e-9);  // 4 BU * 1/2
  EXPECT_NEAR(sys.recompute_reservation(2), 2.0, 1e-9);
}

TEST(GpsExtensionTest, FractionValidation) {
  SystemConfig cfg = quiet_config();
  cfg.known_route_fraction = 1.5;
  EXPECT_THROW(CellularSystem{cfg}, InvariantError);
}

TEST(GpsExtensionTest, FractionZeroMarksNoMobiles) {
  StationaryParams p;
  p.offered_load = 100.0;
  SystemConfig cfg = stationary_config(p);
  cfg.known_route_fraction = 0.0;
  CellularSystem sys(cfg);
  sys.run_for(200.0);
  // Same seed, fraction 0 vs default config: identical trajectories
  // (the route RNG is a separate stream and unused at fraction 0).
  CellularSystem ref(stationary_config(p));
  ref.run_for(200.0);
  EXPECT_EQ(sys.system_status().requests, ref.system_status().requests);
  EXPECT_EQ(sys.system_status().drops, ref.system_status().drops);
}

TEST(StepPolicyWiringTest, ConfigReachesTheControllers) {
  SystemConfig cfg = quiet_config();
  cfg.t_est_step = reservation::StepPolicy::kMultiplicative;
  cfg.t_start = 1.0;
  CellularSystem sys(cfg);
  // Drive cell 4's controller with drops whose T_soj,max is large enough
  // to allow growth: give its neighbour (cell 3) some history first.
  sys.base_station(3).estimator().record({0.0, 3, 4, 500.0});
  auto& w = sys.base_station(4).window();
  const double soj_max = 500.0;
  w.on_handoff(true, soj_max);  // quota not exceeded
  w.on_handoff(true, soj_max);  // step 1 -> 2
  w.on_handoff(true, soj_max);  // step 2 -> 4
  w.on_handoff(true, soj_max);  // step 4 -> 8
  EXPECT_DOUBLE_EQ(w.t_est(), 8.0);  // multiplicative growth, not 4
}

}  // namespace
}  // namespace pabr::core
