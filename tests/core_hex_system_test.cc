// The 2-D hexagonal cellular system (§7 future work as a library module).
#include "core/hex_system.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::core {
namespace {

HexSystemConfig quiet_config() {
  HexSystemConfig cfg;
  cfg.policy = admission::PolicyKind::kStatic;
  cfg.static_g = 0.0;
  cfg.arrival_rate_per_cell = 0.0;  // tests inject traffic by hand
  cfg.motion.jitter = 0.0;          // deterministic sojourns
  cfg.motion.cell_diameter_km = 1.0;
  return cfg;
}

TEST(HexSystemTest, OfferedLoadRoundTrip) {
  HexSystemConfig cfg;
  cfg.voice_ratio = 0.5;
  cfg.set_offered_load(200.0);
  EXPECT_NEAR(cfg.offered_load(), 200.0, 1e-9);
}

TEST(HexSystemTest, AdmissionOccupiesCell) {
  HexCellularSystem sys(quiet_config());
  EXPECT_TRUE(sys.submit_request(5, traffic::ServiceClass::kVideo, 100.0,
                                 1e6));
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(5), 4.0);
  EXPECT_EQ(sys.active_connections(), 1u);
  EXPECT_EQ(sys.cell_metrics(5).pcb.trials(), 1u);
}

TEST(HexSystemTest, ExpiryReleases) {
  HexCellularSystem sys(quiet_config());
  sys.submit_request(5, traffic::ServiceClass::kVoice, 1.0, 30.0);
  sys.run_for(29.0);
  EXPECT_EQ(sys.active_connections(), 1u);
  sys.run_for(2.0);
  EXPECT_EQ(sys.active_connections(), 0u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(5), 0.0);
}

TEST(HexSystemTest, CrossingMovesConnectionToNeighborAndRecords) {
  HexCellularSystem sys(quiet_config());
  // 100 km/h over a 1 km cell with zero jitter: crossing at exactly 36 s.
  sys.submit_request(5, traffic::ServiceClass::kVoice, 100.0, 1e6);
  sys.run_for(35.9);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(5), 1.0);
  sys.run_for(0.2);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(5), 0.0);
  // The connection moved to SOME neighbour of 5 and cell 5 cached the
  // quadruplet.
  double elsewhere = 0.0;
  for (geom::CellId n : sys.grid().neighbors(5)) {
    elsewhere += sys.used_bandwidth(n);
  }
  EXPECT_DOUBLE_EQ(elsewhere, 1.0);
  EXPECT_EQ(sys.base_station(5).estimator().cached_events(), 1u);
  EXPECT_EQ(sys.active_connections(), 1u);
}

TEST(HexSystemTest, DropWhenDestinationFull) {
  HexSystemConfig cfg = quiet_config();
  cfg.motion.persistence = 1.0;  // straight-through once moving
  HexCellularSystem sys(cfg);
  // Fill every neighbour of cell 5 so the first crossing must drop.
  for (geom::CellId n : sys.grid().neighbors(5)) {
    for (int i = 0; i < 100; ++i) {
      ASSERT_TRUE(
          sys.submit_request(n, traffic::ServiceClass::kVoice, 1e-6, 1e6));
    }
  }
  sys.submit_request(5, traffic::ServiceClass::kVoice, 100.0, 1e6);
  sys.run_for(40.0);
  std::uint64_t drops = 0;
  for (geom::CellId n : sys.grid().neighbors(5)) {
    drops += sys.cell_metrics(n).phd.hits();
  }
  EXPECT_EQ(drops, 1u);
}

TEST(HexSystemTest, ReservationSumsOverSixNeighbors) {
  HexSystemConfig cfg = quiet_config();
  cfg.policy = admission::PolicyKind::kAc1;
  cfg.t_start = 1000.0;  // wide window
  HexCellularSystem sys(cfg);
  // One 1-BU connection camped in each neighbour of cell 8 (speed tiny so
  // they never cross), each with a certain hand-in history.
  sys.run_for(1.0);
  for (geom::CellId n : sys.grid().neighbors(8)) {
    ASSERT_TRUE(
        sys.submit_request(n, traffic::ServiceClass::kVoice, 1e-6, 1e6));
    sys.base_station(n).estimator().record({sys.now(), n, 8, 500.0});
  }
  // Eq. (6): six neighbours each expected with p = 1 -> B_r = 6.
  EXPECT_NEAR(sys.recompute_reservation(8), 6.0, 1e-9);
  EXPECT_DOUBLE_EQ(sys.current_reservation(8), 6.0);
}

TEST(HexSystemTest, Ac2CostsSevenCalculationsOnHexGrid) {
  HexSystemConfig cfg = quiet_config();
  cfg.policy = admission::PolicyKind::kAc2;
  HexCellularSystem sys(cfg);
  sys.submit_request(8, traffic::ServiceClass::kVoice, 1.0, 1e6);
  // §5.2.3: "The complexity increase could be larger for two-dimensional
  // cellular structures" — on the hex torus AC2 computes B_r in all 6
  // neighbours plus the cell itself.
  EXPECT_DOUBLE_EQ(sys.system_status().n_calc, 7.0);
}

TEST(HexSystemTest, StatisticalRunKeepsPhdNearTarget) {
  HexSystemConfig cfg;
  cfg.set_offered_load(250.0);
  cfg.policy = admission::PolicyKind::kAc3;
  cfg.motion.cell_diameter_km = 1.0;
  cfg.seed = 3;
  HexCellularSystem sys(cfg);
  sys.run_for(600.0);
  sys.reset_metrics();
  sys.run_for(1200.0);
  const auto s = sys.system_status();
  EXPECT_GT(s.handoffs, 1000u);
  EXPECT_LE(s.phd, 0.02);
  EXPECT_GT(s.pcb, 0.2);  // over-loaded: blocking absorbs the pressure
  // AC3 on the hex grid stays well under AC2's 7 calculations.
  EXPECT_LT(s.n_calc, 4.0);
}

TEST(HexSystemTest, DeterministicUnderSeed) {
  HexSystemConfig cfg;
  cfg.set_offered_load(150.0);
  cfg.seed = 42;
  HexCellularSystem a(cfg);
  HexCellularSystem b(cfg);
  a.run_for(400.0);
  b.run_for(400.0);
  EXPECT_EQ(a.system_status().requests, b.system_status().requests);
  EXPECT_EQ(a.system_status().drops, b.system_status().drops);
}

TEST(HexSystemTest, Validation) {
  HexSystemConfig bad = quiet_config();
  bad.capacity_bu = 0.0;
  EXPECT_THROW(HexCellularSystem{bad}, InvariantError);
  HexCellularSystem sys(quiet_config());
  EXPECT_THROW(sys.capacity(-1), InvariantError);
  EXPECT_THROW(sys.submit_request(999, traffic::ServiceClass::kVoice, 1.0,
                                  1.0),
               InvariantError);
}

}  // namespace
}  // namespace pabr::core
