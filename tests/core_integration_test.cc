// Statistical integration tests: short full-stack simulations whose
// aggregate behaviour must reproduce the paper's qualitative claims.
// Budgets are deliberately loose — these runs are much shorter than the
// paper's — but directionally strict.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/scenario.h"
#include "core/system.h"

namespace pabr::core {
namespace {

RunPlan short_plan() {
  RunPlan plan;
  plan.warmup_s = 600.0;
  plan.measure_s = 1800.0;
  return plan;
}

TEST(IntegrationTest, Ac3KeepsPhdNearTargetWhenOverloaded) {
  StationaryParams p;
  p.offered_load = 300.0;
  p.policy = admission::PolicyKind::kAc3;
  const auto r = run_system(stationary_config(p), short_plan());
  // Target is 0.01; allow slack for the short run.
  EXPECT_LE(r.status.phd, 0.02);
  EXPECT_GT(r.status.handoffs, 1000u);
  // Over-loaded: blocking must be substantial.
  EXPECT_GT(r.status.pcb, 0.3);
}

TEST(IntegrationTest, LightLoadHasNoBlockingOrDropping) {
  StationaryParams p;
  p.offered_load = 60.0;
  const auto r = run_system(stationary_config(p), short_plan());
  EXPECT_LT(r.status.pcb, 0.01);
  EXPECT_LT(r.status.phd, 0.005);
}

TEST(IntegrationTest, StaticReservationFailsTargetForVideoMix) {
  // Paper Fig. 7: G = 10 is not enough for R_vo = 0.5.
  StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 0.5;
  p.policy = admission::PolicyKind::kStatic;
  p.static_g = 10.0;
  const auto r = run_system(stationary_config(p), short_plan());
  EXPECT_GT(r.status.phd, 0.01);
}

TEST(IntegrationTest, Ac3BeatsStaticOnPhdForVideoMix) {
  StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 0.5;
  p.policy = admission::PolicyKind::kAc3;
  const auto ac3 = run_system(stationary_config(p), short_plan());
  p.policy = admission::PolicyKind::kStatic;
  const auto st = run_system(stationary_config(p), short_plan());
  EXPECT_LT(ac3.status.phd, st.status.phd);
}

TEST(IntegrationTest, NcalcOrderingAc1Ac3Ac2) {
  StationaryParams p;
  p.offered_load = 300.0;
  p.policy = admission::PolicyKind::kAc1;
  const auto ac1 = run_system(stationary_config(p), short_plan());
  p.policy = admission::PolicyKind::kAc3;
  const auto ac3 = run_system(stationary_config(p), short_plan());
  p.policy = admission::PolicyKind::kAc2;
  const auto ac2 = run_system(stationary_config(p), short_plan());
  EXPECT_DOUBLE_EQ(ac1.status.n_calc, 1.0);
  EXPECT_DOUBLE_EQ(ac2.status.n_calc, 3.0);
  // Paper §5.2.3: AC3 stays below 1.5 — under half of AC2.
  EXPECT_GT(ac3.status.n_calc, 1.0);
  EXPECT_LT(ac3.status.n_calc, 1.5);
}

TEST(IntegrationTest, HighMobilityReservesMoreThanLow) {
  StationaryParams p;
  p.offered_load = 140.0;
  p.mobility = Mobility::kHigh;
  const auto high = run_system(stationary_config(p), short_plan());
  p.mobility = Mobility::kLow;
  const auto low = run_system(stationary_config(p), short_plan());
  // Paper Fig. 9: "the high-mobility case reserves more bandwidth".
  EXPECT_GT(high.status.br_avg, low.status.br_avg);
}

TEST(IntegrationTest, ReservationGrowsWithVideoShare) {
  StationaryParams p;
  p.offered_load = 200.0;
  p.voice_ratio = 1.0;
  const auto voice = run_system(stationary_config(p), short_plan());
  p.voice_ratio = 0.5;
  const auto mixed = run_system(stationary_config(p), short_plan());
  // Paper Fig. 9: B_r increases as R_vo decreases.
  EXPECT_GT(mixed.status.br_avg, voice.status.br_avg);
}

TEST(IntegrationTest, SameSeedIsFullyDeterministic) {
  StationaryParams p;
  p.offered_load = 150.0;
  p.seed = 77;
  const auto a = run_system(stationary_config(p), short_plan());
  const auto b = run_system(stationary_config(p), short_plan());
  EXPECT_EQ(a.status.requests, b.status.requests);
  EXPECT_EQ(a.status.blocks, b.status.blocks);
  EXPECT_EQ(a.status.handoffs, b.status.handoffs);
  EXPECT_EQ(a.status.drops, b.status.drops);
  EXPECT_DOUBLE_EQ(a.status.br_avg, b.status.br_avg);
  EXPECT_EQ(a.events, b.events);
}

TEST(IntegrationTest, DifferentSeedsDiffer) {
  StationaryParams p;
  p.offered_load = 150.0;
  p.seed = 1;
  const auto a = run_system(stationary_config(p), short_plan());
  p.seed = 2;
  const auto b = run_system(stationary_config(p), short_plan());
  EXPECT_NE(a.status.requests, b.status.requests);
}

TEST(IntegrationTest, CapacityNeverExceeded) {
  // The Cell::attach invariant would throw on violation; surviving an
  // over-loaded run is itself the assertion. Run with drops happening.
  StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 0.5;
  CellularSystem sys(stationary_config(p));
  EXPECT_NO_THROW(sys.run_for(1200.0));
  for (geom::CellId c = 0; c < 10; ++c) {
    EXPECT_LE(sys.used_bandwidth(c), sys.capacity(c));
  }
}

TEST(IntegrationTest, DirectionalScenarioCellOneSeesNoHandoffs) {
  DirectionalParams p;
  p.offered_load = 200.0;
  CellularSystem sys(directional_config(p));
  sys.run_for(1200.0);
  // Paper Table 3: cell <1> has no incoming mobiles, so P_HD = 0 there.
  EXPECT_EQ(sys.cell_metrics(0).phd.trials(), 0u);
  // Downstream cells do see hand-offs.
  EXPECT_GT(sys.cell_metrics(5).phd.trials(), 100u);
}

TEST(IntegrationTest, TimeVaryingRunWithRetriesExecutes) {
  TimeVaryingParams p;
  CellularSystem sys(time_varying_config(p));
  // Simulate 7-10 am of day one: crosses the morning rush hour.
  sys.run_for(7.0 * sim::kHour);
  sys.reset_metrics();
  sys.run_for(3.0 * sim::kHour);
  const auto s = sys.system_status();
  EXPECT_GT(s.requests, 1000u);
  // Actual offered load tracked hourly.
  EXPECT_GE(sys.offered_load().hourly().size(), 9u);
}

TEST(IntegrationTest, WarmedUpSystemMeetsPhdTarget) {
  // The paper's Fig. 11 shows P_HD spiking early while the estimators are
  // cold, then settling at/below the 0.01 target; a warmed-up measurement
  // window must meet it (with slack for the short run).
  StationaryParams p;
  p.offered_load = 300.0;
  RunPlan with_reset;
  with_reset.warmup_s = 600.0;
  with_reset.measure_s = 600.0;
  const auto warm = run_system(stationary_config(p), with_reset);
  EXPECT_GT(warm.status.handoffs, 500u);
  EXPECT_LE(warm.status.phd, 0.015);
}

}  // namespace
}  // namespace pabr::core
