#include "core/metrics.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::core {
namespace {

TEST(OfferedLoadTrackerTest, EmptyTrackerHasNoSamples) {
  OfferedLoadTracker t(10, 120.0);
  EXPECT_TRUE(t.hourly().empty());
}

TEST(OfferedLoadTrackerTest, SingleHourLoadMatchesEq7) {
  OfferedLoadTracker t(10, 120.0);
  // 9000 one-BU requests in hour 0 over 10 cells: lambda_a = 0.25 /s/cell,
  // L_a = 0.25 * 1 * 120 = 30.
  for (int i = 0; i < 9000; ++i) {
    t.on_request(static_cast<double>(i % 3600), 1.0);
  }
  const auto hours = t.hourly();
  ASSERT_EQ(hours.size(), 1u);
  EXPECT_DOUBLE_EQ(hours[0].hour_start, 0.0);
  EXPECT_NEAR(hours[0].load, 30.0, 1e-9);
}

TEST(OfferedLoadTrackerTest, BandwidthWeighted) {
  OfferedLoadTracker t(1, 120.0);
  // One 4-BU request per second for an hour in a 1-cell system:
  // L_a = 4 * 120 = 480... rate 1/s * 4 BU * 120 s = 480.
  for (int i = 0; i < 3600; ++i) {
    t.on_request(static_cast<double>(i), 4.0);
  }
  EXPECT_NEAR(t.hourly()[0].load, 480.0, 1e-9);
}

TEST(OfferedLoadTrackerTest, RequestsLandInTheirHourBuckets) {
  OfferedLoadTracker t(10, 120.0);
  t.on_request(100.0, 1.0);            // hour 0
  t.on_request(3 * 3600.0 + 5.0, 1.0);  // hour 3
  const auto hours = t.hourly();
  ASSERT_EQ(hours.size(), 4u);
  EXPECT_GT(hours[0].load, 0.0);
  EXPECT_DOUBLE_EQ(hours[1].load, 0.0);
  EXPECT_DOUBLE_EQ(hours[2].load, 0.0);
  EXPECT_GT(hours[3].load, 0.0);
  EXPECT_DOUBLE_EQ(hours[3].hour_start, 3.0);
}

TEST(OfferedLoadTrackerTest, Validation) {
  EXPECT_THROW(OfferedLoadTracker(0, 120.0), InvariantError);
  EXPECT_THROW(OfferedLoadTracker(10, 0.0), InvariantError);
  OfferedLoadTracker t(10, 120.0);
  EXPECT_THROW(t.on_request(-1.0, 1.0), InvariantError);
}

}  // namespace
}  // namespace pabr::core
