// The §5.3 blocked-call retry path through CellularSystem: re-requests
// after 5 s, the waiting user keeps moving, and giving up past the road
// edge or by the 1 - 0.1*N_ret coin.
#include <gtest/gtest.h>

#include "core/system.h"
#include "util/check.h"

namespace pabr::core {
namespace {

SystemConfig blocking_config() {
  SystemConfig cfg;
  cfg.policy = admission::PolicyKind::kStatic;
  cfg.static_g = 99.5;  // only 0.5 BU admissible: every request blocks
  cfg.workload.arrival_rate_per_cell = 0.0;
  cfg.retry.enabled = true;
  cfg.retry.giveup_step = 0.0;  // retry with probability 1, forever
  return cfg;
}

traffic::ConnectionRequest request_at(double pos_km, int dir,
                                      double speed_kmh) {
  traffic::ConnectionRequest r;
  r.id = 1;
  r.cell = static_cast<geom::CellId>(pos_km);  // 1 km cells
  r.position_km = pos_km;
  r.direction = dir;
  r.speed_kmh = speed_kmh;
  r.service = traffic::ServiceClass::kVoice;
  r.lifetime_s = 1e6;
  return r;
}

TEST(RetryTest, BlockedRequestRetriesEveryFiveSeconds) {
  CellularSystem sys(blocking_config());
  sys.submit_request(request_at(5.5, +1, 0.0));
  EXPECT_EQ(sys.cell_metrics(5).pcb.trials(), 1u);
  // Each retry is itself a counted (and blocked) request.
  sys.run_for(26.0);  // retries at t = 5, 10, 15, 20, 25
  SystemStatus s = sys.system_status();
  EXPECT_EQ(s.requests, 6u);
  EXPECT_EQ(s.blocks, 6u);
}

TEST(RetryTest, WaitingUserKeepsMovingAcrossCells) {
  CellularSystem sys(blocking_config());
  // 72 km/h = 0.02 km/s: after the 5 s wait the user advanced 0.1 km.
  // Start 0.06 km before the cell <6>/<7> boundary: the retry lands in
  // cell index 6.
  sys.submit_request(request_at(5.95, +1, 72.0));
  sys.run_for(6.0);
  EXPECT_EQ(sys.cell_metrics(5).pcb.trials(), 1u);
  EXPECT_EQ(sys.cell_metrics(6).pcb.trials(), 1u);
}

TEST(RetryTest, GivesUpPastTheOpenRoadEdge) {
  SystemConfig cfg = blocking_config();
  cfg.ring = false;
  CellularSystem sys(cfg);
  // Moving backwards at 72 km/h from 0.05 km: off the road within 5 s.
  sys.submit_request(request_at(0.05, -1, 72.0));
  sys.run_for(30.0);
  EXPECT_EQ(sys.system_status().requests, 1u);  // no retry ever lands
}

TEST(RetryTest, RingWrapsTheWaitingUser) {
  CellularSystem sys(blocking_config());
  sys.submit_request(request_at(9.98, +1, 72.0));  // wraps to cell 0
  sys.run_for(6.0);
  EXPECT_EQ(sys.cell_metrics(9).pcb.trials(), 1u);
  EXPECT_EQ(sys.cell_metrics(0).pcb.trials(), 1u);
}

TEST(RetryTest, DisabledRetryStopsAfterFirstBlock) {
  SystemConfig cfg = blocking_config();
  cfg.retry.enabled = false;
  CellularSystem sys(cfg);
  sys.submit_request(request_at(5.5, +1, 0.0));
  sys.run_for(60.0);
  EXPECT_EQ(sys.system_status().requests, 1u);
}

TEST(RetryTest, AdmittedRetryStopsTheChain) {
  SystemConfig cfg = blocking_config();
  cfg.static_g = 99.0;  // exactly 1 BU admissible
  CellularSystem sys(cfg);
  // First take the single BU with another connection that ends at t = 7.
  traffic::ConnectionRequest holder = request_at(5.2, +1, 0.0);
  holder.id = 99;
  holder.lifetime_s = 7.0;
  ASSERT_TRUE(sys.submit_request(holder));
  // The probe is blocked at t = 0, retries at t = 5 (still blocked), and
  // succeeds at t = 10 after the holder expired.
  sys.submit_request(request_at(5.5, +1, 0.0));
  sys.run_for(30.0);
  const auto s = sys.system_status();
  EXPECT_EQ(s.requests, 4u);  // holder + probe + 2 retries
  EXPECT_EQ(s.blocks, 2u);
  EXPECT_EQ(sys.active_connections(), 1u);
  // No further retries after the success.
  sys.run_for(60.0);
  EXPECT_EQ(sys.system_status().requests, 4u);
}

TEST(BackhaulWiringTest, StarTopologyDoublesHops) {
  SystemConfig mesh_cfg;
  mesh_cfg.policy = admission::PolicyKind::kAc2;
  mesh_cfg.workload.arrival_rate_per_cell = 0.0;
  SystemConfig star_cfg = mesh_cfg;
  star_cfg.interconnect = backhaul::InterconnectKind::kStarMsc;

  CellularSystem mesh(mesh_cfg);
  CellularSystem star(star_cfg);
  traffic::ConnectionRequest r = request_at(5.5, +1, 0.0);
  mesh.submit_request(r);
  star.submit_request(r);
  EXPECT_EQ(mesh.interconnect().total_messages(),
            star.interconnect().total_messages());
  EXPECT_EQ(star.interconnect().total_hops(),
            2 * mesh.interconnect().total_hops());
}

}  // namespace
}  // namespace pabr::core
