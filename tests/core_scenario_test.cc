#include "core/scenario.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::core {
namespace {

TEST(ScenarioTest, StationaryDefaultsMatchPaperParameters) {
  StationaryParams p;
  const SystemConfig cfg = stationary_config(p);
  EXPECT_EQ(cfg.num_cells, 10);
  EXPECT_DOUBLE_EQ(cfg.cell_diameter_km, 1.0);
  EXPECT_TRUE(cfg.ring);
  EXPECT_DOUBLE_EQ(cfg.capacity_bu, 100.0);
  EXPECT_DOUBLE_EQ(cfg.phd_target, 0.01);
  EXPECT_DOUBLE_EQ(cfg.t_start, 1.0);
  EXPECT_EQ(cfg.hoef.n_quad, 100);
  EXPECT_GE(cfg.hoef.t_int, sim::kInfiniteDuration);  // T_int = inf
  EXPECT_FALSE(cfg.retry.enabled);
  EXPECT_FALSE(cfg.load_profile.has_value());
}

TEST(ScenarioTest, StationaryLoadSetsArrivalRate) {
  StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 1.0;
  const SystemConfig cfg = stationary_config(p);
  EXPECT_NEAR(cfg.workload.offered_load(), 300.0, 1e-9);
  EXPECT_NEAR(cfg.workload.arrival_rate_per_cell, 2.5, 1e-12);
}

TEST(ScenarioTest, MobilityPresets) {
  StationaryParams p;
  p.mobility = Mobility::kHigh;
  EXPECT_DOUBLE_EQ(stationary_config(p).workload.speed_min_kmh, 80.0);
  EXPECT_DOUBLE_EQ(stationary_config(p).workload.speed_max_kmh, 120.0);
  p.mobility = Mobility::kLow;
  EXPECT_DOUBLE_EQ(stationary_config(p).workload.speed_min_kmh, 40.0);
  EXPECT_DOUBLE_EQ(stationary_config(p).workload.speed_max_kmh, 60.0);
  EXPECT_STREQ(mobility_name(Mobility::kHigh), "high");
  EXPECT_STREQ(mobility_name(Mobility::kLow), "low");
}

TEST(ScenarioTest, TimeVaryingEnablesProfilesAndRetries) {
  TimeVaryingParams p;
  const SystemConfig cfg = time_varying_config(p);
  EXPECT_TRUE(cfg.load_profile.has_value());
  EXPECT_TRUE(cfg.speed_profile.has_value());
  EXPECT_TRUE(cfg.retry.enabled);
  EXPECT_DOUBLE_EQ(cfg.hoef.t_int, sim::kHour);
  EXPECT_EQ(cfg.hoef.n_win_periods, 1);
  ASSERT_EQ(cfg.hoef.weights.size(), 2u);
  EXPECT_DOUBLE_EQ(cfg.hoef.weights[0], 1.0);
  EXPECT_DOUBLE_EQ(cfg.hoef.weights[1], 1.0);
}

TEST(ScenarioTest, DirectionalIsOpenRoadOneWay) {
  DirectionalParams p;
  const SystemConfig cfg = directional_config(p);
  EXPECT_FALSE(cfg.ring);
  EXPECT_FALSE(cfg.workload.bidirectional);
  EXPECT_NEAR(cfg.workload.offered_load(), 300.0, 1e-9);
}

TEST(ScenarioTest, NegativeLoadRejected) {
  StationaryParams p;
  p.offered_load = -1.0;
  EXPECT_THROW(stationary_config(p), InvariantError);
}

TEST(ScenarioTest, PolicyAndSeedPropagate) {
  StationaryParams p;
  p.policy = admission::PolicyKind::kAc2;
  p.seed = 99;
  const SystemConfig cfg = stationary_config(p);
  EXPECT_EQ(cfg.policy, admission::PolicyKind::kAc2);
  EXPECT_EQ(cfg.seed, 99u);
}

}  // namespace
}  // namespace pabr::core
