// CDMA soft hand-off (§7): make-before-break second legs near the cell
// boundary.
#include <gtest/gtest.h>

#include "core/system.h"
#include "util/check.h"

namespace pabr::core {
namespace {

SystemConfig soft_config(double zone_km = 0.2) {
  SystemConfig cfg;
  cfg.policy = admission::PolicyKind::kStatic;
  cfg.static_g = 0.0;
  cfg.workload.arrival_rate_per_cell = 0.0;
  cfg.soft_handoff_zone_km = zone_km;
  return cfg;
}

traffic::ConnectionRequest voice_at(traffic::ConnectionId id,
                                    geom::CellId cell, double pos,
                                    double speed, double lifetime = 1e6) {
  traffic::ConnectionRequest r;
  r.id = id;
  r.cell = cell;
  r.position_km = pos;
  r.direction = +1;
  r.speed_kmh = speed;
  r.service = traffic::ServiceClass::kVoice;
  r.lifetime_s = lifetime;
  return r;
}

TEST(SoftHandoffTest, SecondLegAllocatedInsideZone) {
  CellularSystem sys(soft_config(0.2));
  // 100 km/h, start at 3.5: boundary at t = 18 s, zone entry (0.2 km
  // before) at t = 10.8 s.
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(10.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 0.0);
  sys.run_for(1.0);  // t = 11 > 10.8
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);  // second leg live
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 1.0);  // original leg still live
  EXPECT_EQ(sys.cell_metrics(4).soft_alloc.count(), 1u);
  // After the crossing only the new cell holds bandwidth.
  sys.run_for(8.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.trials(), 1u);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 0u);
}

TEST(SoftHandoffTest, PreAllocatedHandoffCannotDrop) {
  CellularSystem sys(soft_config(0.2));
  // The probe gets its second leg in cell 4 while there is still room...
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(12.0);
  ASSERT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);
  // ...then cell 4 fills completely behind it.
  for (int i = 0; i < 99; ++i) {
    ASSERT_TRUE(sys.submit_request(voice_at(
        static_cast<traffic::ConnectionId>(100 + i), 4, 4.5, 0.0)));
  }
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 100.0);
  // The crossing still succeeds: the leg was reserved.
  sys.run_for(8.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 0u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 100.0);
}

TEST(SoftHandoffTest, FullDestinationFallsBackToHardAttempt) {
  CellularSystem sys(soft_config(0.2));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sys.submit_request(voice_at(
        static_cast<traffic::ConnectionId>(100 + i), 4, 4.5, 0.0)));
  }
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(12.0);
  EXPECT_EQ(sys.cell_metrics(4).soft_fallback.count(), 1u);
  EXPECT_EQ(sys.cell_metrics(4).soft_alloc.count(), 0u);
  // Boundary attempt against the still-full cell: dropped.
  sys.run_for(8.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
}

TEST(SoftHandoffTest, FallbackCanStillSucceedIfRoomAppears) {
  CellularSystem sys(soft_config(0.2));
  // Blocker occupies the whole cell but expires between the probe's zone
  // entry (t ~ 10.8) and its crossing (t = 18).
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sys.submit_request(voice_at(
        static_cast<traffic::ConnectionId>(100 + i), 4, 4.5, 0.0, 14.0)));
  }
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(20.0);
  EXPECT_EQ(sys.cell_metrics(4).soft_fallback.count(), 1u);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 0u);  // hard attempt succeeded
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);
}

TEST(SoftHandoffTest, ExpiryInsideZoneReleasesBothLegs) {
  CellularSystem sys(soft_config(0.2));
  sys.submit_request(voice_at(1, 3, 3.5, 100.0, /*lifetime=*/14.0));
  sys.run_for(12.0);  // second leg live
  ASSERT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);
  sys.run_for(3.0);  // expires at t = 14, before the crossing at 18
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 0.0);
  EXPECT_EQ(sys.active_connections(), 0u);
}

TEST(SoftHandoffTest, ZoneWiderThanCellAllocatesImmediately) {
  CellularSystem sys(soft_config(5.0));
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(0.1);  // zone entry clamped to "now"
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);
}

TEST(SoftHandoffTest, DisabledZoneNeverDoubleBooks) {
  CellularSystem sys(soft_config(0.0));
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(17.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 0.0);
  EXPECT_EQ(sys.system_status().soft_allocations, 0u);
}

TEST(SoftHandoffTest, SystemStatusAggregates) {
  CellularSystem sys(soft_config(0.2));
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(60.0);  // several cells crossed
  EXPECT_GE(sys.system_status().soft_allocations, 2u);
}

}  // namespace
}  // namespace pabr::core
