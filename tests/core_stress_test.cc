// Randomized stress sweeps: full-stack runs across a grid of scenario
// shapes, checking the invariants that must hold for ANY configuration.
// (The library's internal PABR_CHECKs are active in release too, so just
// surviving a run already asserts bandwidth conservation and event-order
// sanity; the assertions here cover the cross-module contracts.)
#include <gtest/gtest.h>

#include "core/scenario.h"
#include "core/system.h"

namespace pabr::core {
namespace {

struct StressCase {
  std::uint64_t seed;
  double load;
  double voice_ratio;
  admission::PolicyKind policy;
  bool ring;
  bool adaptive_qos;
  double soft_margin;
  double soft_zone_km;
};

class StressTest : public ::testing::TestWithParam<StressCase> {};

TEST_P(StressTest, InvariantsSurviveChaos) {
  const auto& c = GetParam();
  StationaryParams p;
  p.offered_load = c.load;
  p.voice_ratio = c.voice_ratio;
  p.policy = c.policy;
  p.seed = c.seed;
  SystemConfig cfg = stationary_config(p);
  cfg.ring = c.ring;
  cfg.adaptive_qos = c.adaptive_qos;
  cfg.soft_capacity_margin = c.soft_margin;
  cfg.soft_handoff_zone_km = c.soft_zone_km;
  cfg.retry.enabled = (c.seed % 2) == 0;

  CellularSystem sys(cfg);
  for (int chunk = 0; chunk < 4; ++chunk) {
    sys.run_for(250.0);

    double attached_total = 0.0;
    for (geom::CellId cell = 0; cell < cfg.num_cells; ++cell) {
      const Cell& cc = sys.cell(cell);
      // Occupancy never exceeds the soft ceiling; without a margin, the
      // hard capacity.
      EXPECT_LE(cc.used(), cc.soft_capacity() + 1e-9);
      // Per-cell accounting: stored connections sum to used().
      double sum = 0.0;
      for (const auto& entry : cc.connections()) {
        sum += static_cast<double>(entry.bandwidth);
      }
      EXPECT_NEAR(sum, cc.used(), 1e-9);
      attached_total += sum;

      // Probability estimates are probabilities.
      const auto& m = sys.cell_metrics(cell);
      EXPECT_LE(m.phd.hits(), m.phd.trials());
      EXPECT_LE(m.pcb.hits(), m.pcb.trials());
      // T_est within its configured clamps.
      EXPECT_GE(sys.base_station(cell).window().t_est(), 1.0);
    }
    // Every active mobile is attached somewhere: total attachments are at
    // least the number of active connections (soft hand-off mobiles hold
    // a second leg, so attachments can exceed actives).
    EXPECT_GE(attached_total,
              static_cast<double>(sys.active_connections()));

    const auto s = sys.system_status();
    EXPECT_EQ(s.blocks, s.requests - (s.requests - s.blocks));
    EXPECT_LE(s.drops, s.handoffs);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, StressTest,
    ::testing::Values(
        StressCase{1, 300.0, 1.0, admission::PolicyKind::kAc3, true, false,
                   0.0, 0.0},
        StressCase{2, 300.0, 0.5, admission::PolicyKind::kAc1, true, false,
                   0.0, 0.0},
        StressCase{3, 250.0, 0.8, admission::PolicyKind::kAc2, false, false,
                   0.0, 0.0},
        StressCase{4, 300.0, 0.5, admission::PolicyKind::kAc3, true, true,
                   0.0, 0.0},
        StressCase{5, 300.0, 0.5, admission::PolicyKind::kAc3, true, false,
                   0.05, 0.0},
        StressCase{6, 300.0, 0.8, admission::PolicyKind::kAc3, true, false,
                   0.0, 0.15},
        StressCase{7, 280.0, 0.5, admission::PolicyKind::kAc3, false, true,
                   0.05, 0.2},
        StressCase{8, 200.0, 0.8, admission::PolicyKind::kNsDca, true,
                   false, 0.0, 0.0},
        StressCase{9, 300.0, 1.0, admission::PolicyKind::kStatic, true,
                   false, 0.0, 0.1},
        StressCase{10, 120.0, 0.5, admission::PolicyKind::kAc3, false,
                   true, 0.1, 0.3}));

}  // namespace
}  // namespace pabr::core
