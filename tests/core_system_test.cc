// Deterministic unit-level tests of CellularSystem: single scripted
// mobiles injected via submit_request (the Poisson workload is disabled by
// a zero arrival rate), so every hand-off, drop, expiry and reservation
// value can be checked exactly.
#include "core/system.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::core {
namespace {

SystemConfig quiet_config(admission::PolicyKind policy =
                              admission::PolicyKind::kStatic) {
  SystemConfig cfg;
  cfg.policy = policy;
  cfg.static_g = 0.0;  // static with G=0: admit while capacity remains
  cfg.workload.arrival_rate_per_cell = 0.0;
  return cfg;
}

traffic::ConnectionRequest make_request(traffic::ConnectionId id,
                                        geom::CellId cell, double pos_km,
                                        int dir, double speed_kmh,
                                        double lifetime_s,
                                        traffic::ServiceClass svc =
                                            traffic::ServiceClass::kVoice) {
  traffic::ConnectionRequest r;
  r.id = id;
  r.cell = cell;
  r.position_km = pos_km;
  r.direction = dir;
  r.speed_kmh = speed_kmh;
  r.service = svc;
  r.lifetime_s = lifetime_s;
  return r;
}

TEST(SystemTest, AdmittedConnectionConsumesBandwidth) {
  CellularSystem sys(quiet_config());
  EXPECT_TRUE(sys.submit_request(make_request(1, 3, 3.5, +1, 0.0, 1000.0,
                                              traffic::ServiceClass::kVideo)));
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 4.0);
  EXPECT_EQ(sys.active_connections(), 1u);
  EXPECT_EQ(sys.cell(3).connection_count(), 1);
}

TEST(SystemTest, BlockedRequestLeavesNoState) {
  SystemConfig cfg = quiet_config();
  cfg.static_g = 99.5;  // only half a BU usable: everything blocks
  CellularSystem sys(cfg);
  EXPECT_FALSE(sys.submit_request(make_request(1, 3, 3.5, +1, 0.0, 10.0)));
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_EQ(sys.active_connections(), 0u);
  EXPECT_EQ(sys.cell_metrics(3).pcb.hits(), 1u);
  EXPECT_EQ(sys.cell_metrics(3).pcb.trials(), 1u);
}

TEST(SystemTest, LifetimeExpiryReleasesBandwidth) {
  CellularSystem sys(quiet_config());
  sys.submit_request(make_request(1, 3, 3.5, +1, 0.0, 50.0));
  sys.run_for(49.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 1.0);
  sys.run_for(2.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_EQ(sys.active_connections(), 0u);
}

TEST(SystemTest, HandoffMovesConnectionAndRecordsQuadruplet) {
  CellularSystem sys(quiet_config());
  // At 3.5 km moving +1 at 100 km/h: boundary 4.0 km reached after 18 s.
  sys.submit_request(make_request(1, 3, 3.5, +1, 100.0, 1000.0));
  sys.run_for(17.9);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 1.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 0.0);
  sys.run_for(0.2);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);
  // The departed cell cached (T_event=18, prev=3 (started here), next=4,
  // T_soj=18).
  EXPECT_EQ(sys.base_station(3).estimator().cached_events(), 1u);
  const auto fp = sys.base_station(3).estimator().footprint(20.0, 3);
  ASSERT_EQ(fp.size(), 1u);
  EXPECT_EQ(fp[0].next, 4);
  EXPECT_NEAR(fp[0].sojourn, 18.0, 1e-9);
  // Destination metrics observed a successful hand-off.
  EXPECT_EQ(sys.cell_metrics(4).phd.trials(), 1u);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 0u);
}

TEST(SystemTest, ChainedHandoffsTrackPrevCell) {
  CellularSystem sys(quiet_config());
  sys.submit_request(make_request(1, 3, 3.5, +1, 100.0, 10000.0));
  // After 18 s: in cell 4; after 54 s: in cell 5 (36 s per cell).
  sys.run_for(55.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(5), 1.0);
  // Cell 4's history: prev = 3 (mobile had come from cell 3), next = 5.
  const auto fp = sys.base_station(4).estimator().footprint(55.0, 3);
  ASSERT_EQ(fp.size(), 1u);
  EXPECT_EQ(fp[0].next, 5);
  EXPECT_NEAR(fp[0].sojourn, 36.0, 1e-9);
}

TEST(SystemTest, HandoffDropWhenDestinationFull) {
  CellularSystem sys(quiet_config());
  // Fill cell 4 with 100 stationary voice connections.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(sys.submit_request(make_request(
        static_cast<traffic::ConnectionId>(100 + i), 4, 4.5, +1, 0.0,
        1e6)));
  }
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 100.0);
  // A mobile hands off from cell 3 into the full cell 4 and is dropped.
  sys.submit_request(make_request(1, 3, 3.5, +1, 100.0, 1e6));
  sys.run_for(20.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.trials(), 1u);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);  // dropped, released
  EXPECT_EQ(sys.active_connections(), 100u);
  // The quadruplet is still recorded (the mobile physically moved).
  EXPECT_EQ(sys.base_station(3).estimator().cached_events(), 1u);
}

TEST(SystemTest, RingWrapHandoffWorks) {
  CellularSystem sys(quiet_config());
  sys.submit_request(make_request(1, 9, 9.5, +1, 100.0, 1000.0));
  sys.run_for(20.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(9), 0.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(0), 1.0);
}

TEST(SystemTest, OpenRoadExitEndsConnectionSilently) {
  SystemConfig cfg = quiet_config();
  cfg.ring = false;
  CellularSystem sys(cfg);
  sys.submit_request(make_request(1, 9, 9.5, +1, 100.0, 1000.0));
  sys.run_for(20.0);
  EXPECT_EQ(sys.active_connections(), 0u);
  // No hand-off was attempted anywhere and no quadruplet cached.
  for (geom::CellId c = 0; c < 10; ++c) {
    EXPECT_EQ(sys.cell_metrics(c).phd.trials(), 0u);
    EXPECT_EQ(sys.base_station(c).estimator().cached_events(), 0u);
  }
}

TEST(SystemTest, ReservationFollowsEq5Eq6) {
  SystemConfig cfg = quiet_config(admission::PolicyKind::kAc1);
  cfg.t_start = 100.0;  // T_est = 100 s, wide enough to catch everything
  CellularSystem sys(cfg);
  // A 4-BU video connection camped in cell 1 (started there, stationary).
  sys.submit_request(make_request(1, 1, 1.5, +1, 0.0, 1e6,
                                  traffic::ServiceClass::kVideo));
  // Teach cell 1's estimator: started-here mobiles depart to cell 0 after
  // 30 s (longer than the connection's current extant sojourn).
  sys.run_for(1.0);
  sys.base_station(1).estimator().record(
      {sys.now(), 1, 0, 30.0});
  const double br = sys.recompute_reservation(0);
  // p_h = 1 (the single event falls inside (extant, extant+100]), so
  // B_r,0 = 4 * 1 = 4.
  EXPECT_NEAR(br, 4.0, 1e-9);
  EXPECT_DOUBLE_EQ(sys.current_reservation(0), br);
}

TEST(SystemTest, ReservationZeroWithoutHistory) {
  SystemConfig cfg = quiet_config(admission::PolicyKind::kAc1);
  CellularSystem sys(cfg);
  sys.submit_request(make_request(1, 1, 1.5, +1, 0.0, 1e6));
  EXPECT_DOUBLE_EQ(sys.recompute_reservation(0), 0.0);
}

TEST(SystemTest, StationaryMobileNeverLeavesReservationDenominator) {
  SystemConfig cfg = quiet_config(admission::PolicyKind::kAc1);
  cfg.t_start = 100.0;
  CellularSystem sys(cfg);
  sys.submit_request(make_request(1, 1, 1.5, +1, 0.0, 1e6,
                                  traffic::ServiceClass::kVideo));
  sys.run_for(1.0);
  sys.base_station(1).estimator().record({sys.now(), 1, 0, 30.0});
  // Let the connection's extant sojourn exceed every cached sojourn: it
  // is then estimated stationary and contributes nothing.
  sys.run_for(60.0);
  EXPECT_DOUBLE_EQ(sys.recompute_reservation(0), 0.0);
}

TEST(SystemTest, TracedCellRecordsSeries) {
  SystemConfig cfg = quiet_config();
  cfg.traced_cells = {4};
  CellularSystem sys(cfg);
  EXPECT_EQ(sys.trace(3), nullptr);
  ASSERT_NE(sys.trace(4), nullptr);
  sys.submit_request(make_request(1, 3, 3.5, +1, 100.0, 1000.0));
  sys.run_for(20.0);
  const CellTrace* tr = sys.trace(4);
  ASSERT_EQ(tr->t_est.points().size(), 1u);
  ASSERT_EQ(tr->phd.points().size(), 1u);
  EXPECT_NEAR(tr->t_est.points()[0].t, 18.0, 1e-9);
  EXPECT_DOUBLE_EQ(tr->phd.points()[0].v, 0.0);
}

TEST(SystemTest, ResetMetricsKeepsLearnedState) {
  CellularSystem sys(quiet_config());
  sys.submit_request(make_request(1, 3, 3.5, +1, 100.0, 1000.0));
  sys.run_for(20.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.trials(), 1u);
  sys.reset_metrics();
  EXPECT_EQ(sys.cell_metrics(4).phd.trials(), 0u);
  EXPECT_EQ(sys.cell_metrics(3).pcb.trials(), 0u);
  // Learned history survives.
  EXPECT_EQ(sys.base_station(3).estimator().cached_events(), 1u);
  // Radio state survives.
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 1.0);
}

TEST(SystemTest, CellStatusSnapshotFields) {
  CellularSystem sys(quiet_config());
  sys.submit_request(make_request(1, 3, 3.5, +1, 0.0, 1e6,
                                  traffic::ServiceClass::kVideo));
  sys.run_for(10.0);
  const CellStatus s = sys.cell_status(3);
  EXPECT_EQ(s.cell, 4);  // 1-based in the paper's tables
  EXPECT_DOUBLE_EQ(s.bu, 4.0);
  EXPECT_EQ(s.requests, 1u);
  EXPECT_EQ(s.blocks, 0u);
  EXPECT_DOUBLE_EQ(s.t_est, 1.0);
}

TEST(SystemTest, SystemStatusAggregatesCells) {
  CellularSystem sys(quiet_config());
  sys.submit_request(make_request(1, 2, 2.5, +1, 0.0, 1e6));
  sys.submit_request(make_request(2, 7, 7.5, +1, 0.0, 1e6));
  sys.run_for(1.0);
  const SystemStatus s = sys.system_status();
  EXPECT_EQ(s.requests, 2u);
  EXPECT_EQ(s.blocks, 0u);
  EXPECT_DOUBLE_EQ(s.pcb, 0.0);
}

TEST(SystemTest, HandoffSignalledOverBackhaul) {
  CellularSystem sys(quiet_config());
  sys.submit_request(make_request(1, 3, 3.5, +1, 100.0, 1000.0));
  sys.run_for(20.0);
  EXPECT_EQ(sys.interconnect().messages(
                backhaul::MessageType::kHandoffSignal),
            1u);
}

TEST(SystemTest, Ac1CountsOneCalculationPerAdmission) {
  SystemConfig cfg = quiet_config(admission::PolicyKind::kAc1);
  CellularSystem sys(cfg);
  sys.submit_request(make_request(1, 3, 3.5, +1, 0.0, 1e6));
  sys.submit_request(make_request(2, 3, 3.5, +1, 0.0, 1e6));
  EXPECT_DOUBLE_EQ(sys.accountant().n_calc(), 1.0);
  EXPECT_EQ(sys.accountant().total_br_calculations(), 2u);
}

TEST(SystemTest, Ac2CountsThreeCalculationsOnRing) {
  SystemConfig cfg = quiet_config(admission::PolicyKind::kAc2);
  CellularSystem sys(cfg);
  sys.submit_request(make_request(1, 3, 3.5, +1, 0.0, 1e6));
  EXPECT_DOUBLE_EQ(sys.accountant().n_calc(), 3.0);
}

TEST(SystemTest, InvalidCellIdsRejected) {
  CellularSystem sys(quiet_config());
  EXPECT_THROW(sys.capacity(-1), InvariantError);
  EXPECT_THROW(sys.capacity(10), InvariantError);
  EXPECT_THROW(sys.cell_status(10), InvariantError);
  EXPECT_THROW(sys.submit_request(make_request(1, 11, 0.5, 1, 0.0, 1.0)),
               InvariantError);
}

TEST(SystemTest, VideoDropFreesAllFourUnits) {
  CellularSystem sys(quiet_config());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(sys.submit_request(make_request(
        static_cast<traffic::ConnectionId>(100 + i), 4, 4.5, +1, 0.0, 1e6,
        traffic::ServiceClass::kVideo)));
  }
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 100.0);
  sys.submit_request(make_request(
      1, 3, 3.9, +1, 100.0, 1e6, traffic::ServiceClass::kVideo));
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 4.0);
  sys.run_for(10.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
}

}  // namespace
}  // namespace pabr::core
