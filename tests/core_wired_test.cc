// The wired backbone wired into CellularSystem (§2/§7): blocking at the
// backbone, drops at under-provisioned access links, and the mirrored
// wired reservation.
#include <gtest/gtest.h>

#include "core/system.h"
#include "util/check.h"

namespace pabr::core {
namespace {

SystemConfig wired_config(double access_bu, double uplink_bu = 1e9) {
  SystemConfig cfg;
  cfg.policy = admission::PolicyKind::kStatic;
  cfg.static_g = 0.0;
  cfg.workload.arrival_rate_per_cell = 0.0;
  cfg.wired = wired::BackboneConfig{access_bu, uplink_bu};
  return cfg;
}

traffic::ConnectionRequest voice_at(traffic::ConnectionId id,
                                    geom::CellId cell, double pos,
                                    double speed = 0.0) {
  traffic::ConnectionRequest r;
  r.id = id;
  r.cell = cell;
  r.position_km = pos;
  r.direction = +1;
  r.speed_kmh = speed;
  r.service = traffic::ServiceClass::kVoice;
  r.lifetime_s = 1e6;
  return r;
}

TEST(CoreWiredTest, AdmissionOccupiesTheRoute) {
  CellularSystem sys(wired_config(50.0));
  ASSERT_TRUE(sys.submit_request(voice_at(1, 3, 3.5)));
  ASSERT_NE(sys.backbone(), nullptr);
  EXPECT_DOUBLE_EQ(sys.backbone()->access(3).used(), 1.0);
  EXPECT_DOUBLE_EQ(sys.backbone()->uplink().used(), 1.0);
}

TEST(CoreWiredTest, UndersizedAccessLinkBlocksNewCalls) {
  // Radio capacity 100 but wired access only 10: the 11th call blocks at
  // the backbone even though the air interface has room.
  CellularSystem sys(wired_config(10.0));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sys.submit_request(voice_at(
        static_cast<traffic::ConnectionId>(1 + i), 3, 3.5)));
  }
  EXPECT_FALSE(sys.submit_request(voice_at(99, 3, 3.5)));
  EXPECT_EQ(sys.wired_blocks(), 1u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 10.0);
}

TEST(CoreWiredTest, HandoffDropsWhenNewAccessLinkFull) {
  CellularSystem sys(wired_config(10.0));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(sys.submit_request(voice_at(
        static_cast<traffic::ConnectionId>(100 + i), 4, 4.5)));
  }
  // Radio cell 4 has 90 BU free, but access-4 is saturated.
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(20.0);
  EXPECT_EQ(sys.wired_drops(), 1u);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
  // The dropped call's wired legs were fully released.
  EXPECT_DOUBLE_EQ(sys.backbone()->access(3).used(), 0.0);
}

TEST(CoreWiredTest, HandoffReroutesAccessLeg) {
  CellularSystem sys(wired_config(50.0));
  sys.submit_request(voice_at(1, 3, 3.5, 100.0));
  sys.run_for(20.0);
  EXPECT_DOUBLE_EQ(sys.backbone()->access(3).used(), 0.0);
  EXPECT_DOUBLE_EQ(sys.backbone()->access(4).used(), 1.0);
  EXPECT_DOUBLE_EQ(sys.backbone()->uplink().used(), 1.0);
}

TEST(CoreWiredTest, ExpiryReleasesWiredLegs) {
  CellularSystem sys(wired_config(50.0));
  traffic::ConnectionRequest r = voice_at(1, 3, 3.5);
  r.lifetime_s = 30.0;
  sys.submit_request(r);
  sys.run_for(40.0);
  EXPECT_DOUBLE_EQ(sys.backbone()->access(3).used(), 0.0);
  EXPECT_DOUBLE_EQ(sys.backbone()->uplink().used(), 0.0);
}

TEST(CoreWiredTest, WiredReservationMirrorsBr) {
  SystemConfig cfg = wired_config(50.0);
  cfg.policy = admission::PolicyKind::kAc1;
  cfg.t_start = 100.0;
  CellularSystem sys(cfg);
  sys.submit_request(voice_at(1, 1, 1.5));
  sys.run_for(1.0);
  sys.base_station(1).estimator().record({sys.now(), 1, 0, 30.0});
  const double br = sys.recompute_reservation(0);
  EXPECT_GT(br, 0.0);
  EXPECT_DOUBLE_EQ(sys.backbone()->reservation(0), br);
}

TEST(CoreWiredTest, SharedUplinkBottleneckBlocksEverywhere) {
  CellularSystem sys(wired_config(100.0, /*uplink=*/3.0));
  ASSERT_TRUE(sys.submit_request(voice_at(1, 0, 0.5)));
  ASSERT_TRUE(sys.submit_request(voice_at(2, 5, 5.5)));
  ASSERT_TRUE(sys.submit_request(voice_at(3, 9, 9.5)));
  // Any fourth call, in any cell, blocks on the uplink pool.
  EXPECT_FALSE(sys.submit_request(voice_at(4, 7, 7.5)));
  EXPECT_EQ(sys.wired_blocks(), 1u);
}

TEST(CoreWiredTest, NoBackboneByDefault) {
  SystemConfig cfg;
  cfg.workload.arrival_rate_per_cell = 0.0;
  CellularSystem sys(cfg);
  EXPECT_EQ(sys.backbone(), nullptr);
  EXPECT_EQ(sys.wired_blocks(), 0u);
}

}  // namespace
}  // namespace pabr::core
