// Cross-module edge cases collected during development review.
#include <gtest/gtest.h>

#include "admission/policy.h"
#include "core/scenario.h"
#include "core/system.h"
#include "hoef/estimator.h"
#include "util/check.h"

namespace pabr {
namespace {

// ---- HOEF ---------------------------------------------------------------

TEST(HoefEdgeTest, PruneIsIdempotent) {
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kHour;
  hoef::HandoffEstimator e(0, cfg);
  e.record({100.0, 1, 2, 5.0});
  e.prune(100.0 + 3.0 * sim::kDay);
  const std::size_t after_first = e.cached_events();
  e.prune(100.0 + 3.0 * sim::kDay);
  EXPECT_EQ(e.cached_events(), after_first);
  EXPECT_EQ(after_first, 0u);
}

TEST(HoefEdgeTest, WeightsShorterThanWindowsTreatedAsZero) {
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kHour;
  cfg.n_win_periods = 3;
  cfg.weights = {1.0};  // w_1..w_3 implicitly 0
  hoef::HandoffEstimator e(0, cfg);
  e.record({9.0 * sim::kHour, 1, 2, 5.0});
  // Same time tomorrow: the n = 1 window exists but has zero weight.
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(9.0 * sim::kHour + sim::kDay, 1, 2, 0.0, 10.0),
      0.0);
  // Today it is visible.
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(9.5 * sim::kHour, 1, 2, 0.0, 10.0), 1.0);
}

TEST(HoefEdgeTest, ZeroTEstWindowReservesNothing) {
  hoef::EstimatorConfig cfg;
  hoef::HandoffEstimator e(0, cfg);
  e.record({10.0, 1, 2, 5.0});
  // T_est = 0: numerator interval (ext, ext] is empty.
  EXPECT_DOUBLE_EQ(e.handoff_probability(20.0, 1, 2, 0.0, 0.0), 0.0);
}

TEST(HoefEdgeTest, SojournZeroEventHandled) {
  hoef::EstimatorConfig cfg;
  hoef::HandoffEstimator e(0, cfg);
  e.record({10.0, 1, 2, 0.0});  // instantaneous transit
  // A fresh mobile (extant 0): the 0-sojourn event does NOT outlast it
  // (strict denominator), so the estimator sees a stationary mobile.
  EXPECT_DOUBLE_EQ(e.handoff_probability(20.0, 1, 2, 0.0, 10.0), 0.0);
}

// ---- Admission ------------------------------------------------------------

class SaturatedContext final : public admission::AdmissionContext {
 public:
  double capacity(geom::CellId) const override { return 100.0; }
  double used_bandwidth(geom::CellId) const override { return 100.0; }
  const std::vector<geom::CellId>& adjacent(geom::CellId) const override {
    return neighbors_;
  }
  double recompute_reservation(geom::CellId cell) override {
    recomputes.push_back(cell);
    return 5.0;
  }
  double current_reservation(geom::CellId) const override { return 5.0; }
  std::vector<geom::CellId> recomputes;

 private:
  std::vector<geom::CellId> neighbors_{1, 2};
};

TEST(AdmissionEdgeTest, Ac3RecomputesAllSuspectsEvenWhenDoomed) {
  // All neighbours appear over-committed: AC3's step 1 runs for each of
  // them (no short-circuit — the messaging goes out in parallel), then
  // the cell's own recompute. N_calc = 3 here.
  SaturatedContext ctx;
  auto p = admission::make_policy(admission::PolicyKind::kAc3);
  EXPECT_FALSE(p->admit(ctx, 0, 1));
  EXPECT_EQ(ctx.recomputes.size(), 3u);
}

TEST(AdmissionEdgeTest, StaticGreaterThanCapacityBlocksAll) {
  SaturatedContext ctx;
  auto p = admission::make_policy(admission::PolicyKind::kStatic, 1000.0);
  EXPECT_FALSE(p->admit(ctx, 0, 1));
}

// ---- System ---------------------------------------------------------------

TEST(SystemEdgeTest, ZeroLoadRunsToCompletion) {
  core::StationaryParams p;
  p.offered_load = 0.0;
  core::CellularSystem sys(core::stationary_config(p));
  sys.run_for(1000.0);
  const auto s = sys.system_status();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.handoffs, 0u);
  EXPECT_EQ(sys.events_executed(), 0u);
}

TEST(SystemEdgeTest, TraceBrRecordsOnEveryRecompute) {
  core::SystemConfig cfg;
  cfg.policy = admission::PolicyKind::kAc1;
  cfg.workload.arrival_rate_per_cell = 0.0;
  cfg.traced_cells = {0};
  core::CellularSystem sys(cfg);
  sys.recompute_reservation(0);
  sys.run_for(1.0);
  sys.recompute_reservation(0);
  ASSERT_NE(sys.trace(0), nullptr);
  EXPECT_EQ(sys.trace(0)->br.points().size(), 2u);
}

TEST(SystemEdgeTest, TimeVaryingArrivalsFollowTheDailyProfile) {
  core::TimeVaryingParams p;
  p.policy = admission::PolicyKind::kAc1;
  core::CellularSystem sys(core::time_varying_config(p));
  // Hours 2-4 (night) vs 8-10 (morning rush): the rush window must see
  // several times the requests.
  sys.run_for(2.0 * sim::kHour);
  const auto r0 = sys.system_status().requests;
  sys.run_for(2.0 * sim::kHour);
  const auto night = sys.system_status().requests - r0;
  sys.run_for(4.0 * sim::kHour);  // now at hour 8
  const auto r1 = sys.system_status().requests;
  sys.run_for(2.0 * sim::kHour);
  const auto rush = sys.system_status().requests - r1;
  EXPECT_GT(rush, 3 * night);
}

TEST(SystemEdgeTest, VideoOnlyWorkloadWorks) {
  core::StationaryParams p;
  p.offered_load = 200.0;
  p.voice_ratio = 0.0;  // all 4-BU video
  core::CellularSystem sys(core::stationary_config(p));
  sys.run_for(600.0);
  const auto s = sys.system_status();
  EXPECT_GT(s.requests, 100u);
  for (geom::CellId c = 0; c < 10; ++c) {
    EXPECT_LE(sys.used_bandwidth(c), 100.0);
  }
}

TEST(SystemEdgeTest, TwoCellRingWorks) {
  core::SystemConfig cfg;
  cfg.num_cells = 2;
  cfg.workload.arrival_rate_per_cell =
      traffic::arrival_rate_for_load(150.0, 1.0);
  core::CellularSystem sys(cfg);
  EXPECT_NO_THROW(sys.run_for(600.0));
  EXPECT_GT(sys.system_status().handoffs, 100u);
}

}  // namespace
}  // namespace pabr
