// Direct hammer of the IncrementalEngine's open-addressed pair table
// (reservation/engine.h, DESIGN.md §11): enough (source, target) pairs to
// force table growth, interleaved insert / mark_stale (backward-shift
// erase) / reinsert cycles, connection-table churn and estimator updates
// — with EVERY accumulate() checked for bitwise equality (==, not NEAR)
// against the from-scratch Eq. (5) rescan. The system-level equivalence
// suite (reservation_incremental_test.cc) covers the same engine through
// the simulator; this one aims the churn directly at the hash table's
// probe runs and deletion paths.
#include "reservation/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hoef/estimator.h"
#include "sim/random.h"
#include "sim/time.h"
#include "traffic/connection.h"

namespace pabr {
namespace {

constexpr int kSources = 12;
constexpr int kTargets = 6;  // 72 live pairs > 64-slot initial table

/// The scratch Eq. (5) rescan the engine must reproduce bit for bit
/// (mirrors core::CellularSystem::rescan_contribution, route-free case).
double scratch_contribution(const std::vector<traffic::ConnectionEntry>& table,
                            const hoef::HandoffEstimator& estimator,
                            geom::CellId target, sim::Time t,
                            sim::Duration t_est, double running) {
  for (const traffic::ConnectionEntry& e : table) {
    const sim::Duration extant = t - e.view.entered_cell_at;
    const double ph = estimator.handoff_probability(t, e.view.prev_cell,
                                                    target, extant, t_est);
    running += static_cast<double>(e.view.reserve_bandwidth) * ph;
  }
  return running;
}

struct SourceState {
  hoef::HandoffEstimator estimator;
  std::vector<traffic::ConnectionEntry> table;  // id-sorted
  traffic::ConnectionId next_id = 1;

  explicit SourceState(geom::CellId self)
      : estimator(self, [] {
          hoef::EstimatorConfig cfg;
          cfg.t_int = sim::kInfiniteDuration;  // cacheable terms
          cfg.n_quad = 30;
          return cfg;
        }()) {}

  void insert(sim::Rng& rng, sim::Time now) {
    traffic::ReservationView view;
    view.reserve_bandwidth = rng.uniform_int(1, 6);
    view.prev_cell = static_cast<geom::CellId>(rng.uniform_int(0, kSources));
    view.entered_cell_at = now - rng.uniform(0.0, 40.0);
    traffic::ConnectionEntry e{next_id++, view.reserve_bandwidth, view};
    table.insert(std::lower_bound(table.begin(), table.end(), e.id,
                                  [](const traffic::ConnectionEntry& a,
                                     traffic::ConnectionId id) {
                                    return a.id < id;
                                  }),
                 e);
  }

  void remove(sim::Rng& rng) {
    if (table.empty()) return;
    table.erase(table.begin() +
                rng.uniform_int(0, static_cast<int>(table.size()) - 1));
  }

  void reprice(sim::Rng& rng) {
    if (table.empty()) return;
    auto& e = table[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(table.size()) - 1))];
    e.view.reserve_bandwidth = rng.uniform_int(1, 6);
    e.bandwidth = e.view.reserve_bandwidth;
  }
};

TEST(EnginePairCacheTest, HammeredPairsStayBitwiseExact) {
  std::vector<SourceState> sources;
  sources.reserve(kSources);
  for (int s = 0; s < kSources; ++s) {
    sources.emplace_back(static_cast<geom::CellId>(s));
  }
  sim::Rng rng(42);
  sim::Time now = 100.0;
  // Seed every estimator with histories toward each hammer target.
  for (auto& src : sources) {
    for (int i = 0; i < 120; ++i) {
      src.estimator.record(
          {now + 0.1 * i, static_cast<geom::CellId>(rng.uniform_int(0, kSources)),
           static_cast<geom::CellId>(kSources + rng.uniform_int(0, kTargets - 1)),
           rng.uniform(0.5, 60.0)});
    }
    for (int i = 0; i < 8; ++i) src.insert(rng, now);
  }
  now += 20.0;

  reservation::IncrementalEngine engine;
  std::uint64_t last_invalidated = 0;
  for (int round = 0; round < 40; ++round) {
    now += 1.5;
    // Churn: connection arrivals/departures/QoS changes on some sources,
    // fresh hand-off observations (state_version bumps) on others.
    for (auto& src : sources) {
      switch (rng.uniform_int(0, 4)) {
        case 0: src.insert(rng, now); break;
        case 1: src.remove(rng); break;
        case 2: src.reprice(rng); break;
        case 3:
          src.estimator.record(
              {now, static_cast<geom::CellId>(rng.uniform_int(0, kSources)),
               static_cast<geom::CellId>(
                   kSources + rng.uniform_int(0, kTargets - 1)),
               rng.uniform(0.5, 60.0)});
          break;
        default: break;  // leave this source untouched: fast-path round
      }
    }
    // Degrade a few random pairs: slot erased (backward-shift), stale
    // mark up until the next completed accumulate.
    for (int k = 0; k < 3; ++k) {
      const auto s = static_cast<geom::CellId>(rng.uniform_int(0, kSources - 1));
      const auto tgt = static_cast<geom::CellId>(
          kSources + rng.uniform_int(0, kTargets - 1));
      engine.mark_stale(s, tgt);
      EXPECT_TRUE(engine.is_stale(s, tgt));
    }
    EXPECT_GE(engine.pairs_invalidated(), last_invalidated);
    last_invalidated = engine.pairs_invalidated();

    // Vary t_est occasionally: a pair whose t_est stepped must recompute.
    const sim::Duration t_est = (round % 7 == 0) ? 25.0 : 30.0;
    for (int s = 0; s < kSources; ++s) {
      const auto& src = sources[static_cast<std::size_t>(s)];
      for (int tg = 0; tg < kTargets; ++tg) {
        const auto target = static_cast<geom::CellId>(kSources + tg);
        const double running = 0.125 * round;  // exact in binary
        const double fast =
            engine.accumulate(static_cast<geom::CellId>(s), target, src.table,
                              src.estimator, now, t_est, running);
        const double reference = scratch_contribution(
            src.table, src.estimator, target, now, t_est, running);
        EXPECT_EQ(fast, reference)
            << "source " << s << " target " << target << " round " << round;
        // A completed accumulate discharges the pair's stale mark.
        EXPECT_FALSE(
            engine.is_stale(static_cast<geom::CellId>(s), target));
      }
    }
  }
  // The steady rounds must actually exercise the cache, not bypass it.
  EXPECT_GT(engine.terms_reused(), 0u);
  EXPECT_GT(engine.terms_recomputed(), 0u);
}

TEST(EnginePairCacheTest, InsertInvalidateReinsertCycle) {
  // One pair, cycled hard: warm the cache, invalidate (slot deleted),
  // re-accumulate (slot reinserted), repeat. Every answer bitwise equal
  // to scratch; staleness drops exactly at the re-sync.
  SourceState src(0);
  sim::Rng rng(7);
  sim::Time now = 50.0;
  for (int i = 0; i < 60; ++i) {
    src.estimator.record({now + 0.2 * i, 0, 1, rng.uniform(1.0, 30.0)});
  }
  for (int i = 0; i < 6; ++i) src.insert(rng, now);
  now += 15.0;

  reservation::IncrementalEngine engine;
  const geom::CellId target = 1;
  for (int cycle = 0; cycle < 100; ++cycle) {
    now += 0.5;
    const double a = engine.accumulate(0, target, src.table, src.estimator,
                                       now, 30.0, 0.0);
    EXPECT_EQ(a, scratch_contribution(src.table, src.estimator, target, now,
                                      30.0, 0.0))
        << "warm cycle " << cycle;
    engine.mark_stale(0, target);
    ASSERT_TRUE(engine.is_stale(0, target));
    const double b = engine.accumulate(0, target, src.table, src.estimator,
                                       now, 30.0, 0.0);
    EXPECT_EQ(b, a) << "post-heal cycle " << cycle;
    EXPECT_FALSE(engine.is_stale(0, target));
  }
  // Re-marking an already-stale pair must not double-count.
  engine.mark_stale(0, target);
  const std::uint64_t once = engine.pairs_invalidated();
  engine.mark_stale(0, target);
  EXPECT_EQ(engine.pairs_invalidated(), once);
}

}  // namespace
}  // namespace pabr
