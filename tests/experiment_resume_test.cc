// RunPlan-level checkpoint/resume (core/experiment.h): run_system with a
// checkpoint cadence must not perturb the trajectory, the emitted file
// must finish to the exact same digest when resumed — including across
// the warm-up reset boundary — and run_replicated must keep per-seed
// checkpoint files apart.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>

#include "core/experiment.h"
#include "core/scenario.h"
#include "util/check.h"

namespace pabr::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

SystemConfig small_config() {
  StationaryParams p;
  p.offered_load = 200.0;
  p.policy = admission::PolicyKind::kAc2;
  p.seed = 3;
  return stationary_config(p);
}

RunPlan short_plan() {
  RunPlan plan;
  plan.warmup_s = 150.0;
  plan.measure_s = 350.0;
  return plan;
}

TEST(ExperimentResumeTest, CheckpointingDoesNotPerturbTheRun) {
  const RunResult straight = run_system(small_config(), short_plan());
  ASSERT_NE(straight.digest, 0u);

  const std::string path = temp_path("experiment_ckpt");
  RunPlan plan = short_plan();
  plan.checkpoint_every_s = 120.0;  // fires at 120, 240, 360, 480 < 500
  plan.checkpoint_path = path;
  const RunResult checkpointed = run_system(small_config(), plan);
  EXPECT_EQ(checkpointed.digest, straight.digest);
  EXPECT_EQ(checkpointed.events, straight.events);

  // The file now holds the newest (t = 480) checkpoint; resuming it must
  // finish to the identical digest. The config argument is ignored — the
  // snapshot carries its own.
  RunPlan resume = short_plan();
  resume.resume_from = path;
  const RunResult resumed = run_system(SystemConfig{}, resume);
  EXPECT_EQ(resumed.digest, straight.digest);
  EXPECT_EQ(resumed.events, straight.events);
  EXPECT_EQ(resumed.status.requests, straight.status.requests);
  std::remove(path.c_str());
}

TEST(ExperimentResumeTest, ResumeAcrossTheWarmupResetBoundary) {
  const RunResult straight = run_system(small_config(), short_plan());
  const std::string path = temp_path("experiment_ckpt_warmup");

  // Capture a PRE-warmup snapshot (t = 100 < warm-up 150) by running a
  // truncated plan that stops — and checkpoints — at t = 100 with no
  // reset applied.
  {
    RunPlan plan;
    plan.warmup_s = 100.0;
    plan.measure_s = 0.0;
    plan.reset_after_warmup = false;
    plan.checkpoint_every_s = 100.0;
    plan.checkpoint_path = path;
    run_system(small_config(), plan);
  }
  // Resuming from t=100 must re-apply the warm-up reset at t=150 and
  // land on the uninterrupted digest.
  RunPlan resume = short_plan();
  resume.resume_from = path;
  const RunResult resumed = run_system(SystemConfig{}, resume);
  EXPECT_EQ(resumed.digest, straight.digest);
  std::remove(path.c_str());
}

TEST(ExperimentResumeTest, ReplicatedRunsKeepSeparateCheckpointFiles) {
  const std::string prefix = temp_path("experiment_ckpt_rep");
  RunPlan plan;
  plan.warmup_s = 50.0;
  plan.measure_s = 150.0;
  plan.checkpoint_every_s = 80.0;
  plan.checkpoint_path = prefix;
  const ReplicatedResult rep = run_replicated(small_config(), plan, 2, 2);
  ASSERT_EQ(rep.runs.size(), 2u);
  for (int i = 0; i < 2; ++i) {
    const std::string path = prefix + "-s" + std::to_string(i);
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is.good()) << path;
    std::remove(path.c_str());
  }
  // Different seeds produced different states.
  EXPECT_NE(rep.runs[0].digest, rep.runs[1].digest);
}

TEST(ExperimentResumeTest, ReplicatedRefusesSharedResumeFile) {
  RunPlan plan = short_plan();
  plan.resume_from = temp_path("whatever");
  EXPECT_THROW(run_replicated(small_config(), plan, 2, 1), InvariantError);
}

}  // namespace
}  // namespace pabr::core
