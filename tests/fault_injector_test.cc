// fault::FaultInjector — determinism and purity contracts (DESIGN.md
// §10). The injector must answer every query as a pure function of
// (config, arguments): same fate for the same message on every code
// path, link/station states independent of query order, and a fully
// deterministic retry/back-off ladder.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "fault/fault.h"
#include "util/check.h"

namespace pabr {
namespace {

fault::FaultConfig base_config() {
  fault::FaultConfig f;
  f.enabled = true;
  f.seed = 42;
  return f;
}

TEST(FaultInjectorTest, RejectsBadConfig) {
  auto bad = base_config();
  bad.message_loss = 1.5;
  EXPECT_THROW(fault::FaultInjector{bad}, InvariantError);
  bad = base_config();
  bad.link_mttr_s = 0.0;
  EXPECT_THROW(fault::FaultInjector{bad}, InvariantError);
  bad = base_config();
  bad.max_retries = -1;
  EXPECT_THROW(fault::FaultInjector{bad}, InvariantError);
  bad = base_config();
  bad.backoff_max_s = bad.backoff_base_s / 2.0;
  EXPECT_THROW(fault::FaultInjector{bad}, InvariantError);
}

TEST(FaultInjectorTest, BackoffLadderIsBoundedDoubling) {
  auto f = base_config();
  f.backoff_base_s = 0.05;
  f.backoff_max_s = 0.3;
  fault::FaultInjector inj(f);
  EXPECT_DOUBLE_EQ(inj.backoff_before_attempt(1), 0.05);
  EXPECT_DOUBLE_EQ(inj.backoff_before_attempt(2), 0.10);
  EXPECT_DOUBLE_EQ(inj.backoff_before_attempt(3), 0.20);
  EXPECT_DOUBLE_EQ(inj.backoff_before_attempt(4), 0.30);  // capped
  EXPECT_DOUBLE_EQ(inj.backoff_before_attempt(9), 0.30);  // stays capped
}

TEST(FaultInjectorTest, MessageFateIsStateless) {
  auto f = base_config();
  f.message_loss = 0.5;
  fault::FaultInjector a(f);
  fault::FaultInjector b(f);
  int lost = 0;
  for (int k = 0; k < 200; ++k) {
    const sim::Time t = 0.25 * k;
    const bool fate = a.message_lost(1, 2, t, 0, 1, f.message_loss);
    // Same injector asked again, and a fresh injector, agree exactly.
    EXPECT_EQ(fate, a.message_lost(1, 2, t, 0, 1, f.message_loss));
    EXPECT_EQ(fate, b.message_lost(1, 2, t, 0, 1, f.message_loss));
    lost += fate ? 1 : 0;
  }
  // The hash actually behaves like a coin, not a constant.
  EXPECT_GT(lost, 50);
  EXPECT_LT(lost, 150);
  // Extremes are exact.
  EXPECT_FALSE(a.message_lost(1, 2, 3.0, 0, 1, 0.0));
  EXPECT_TRUE(a.message_lost(1, 2, 3.0, 0, 1, 1.0));
}

TEST(FaultInjectorTest, ExchangeOutcomeIsPure) {
  auto f = base_config();
  f.message_loss = 0.3;
  f.message_delay = 0.1;
  f.link_mtbf_s = 200.0;
  f.link_mttr_s = 20.0;
  f.max_retries = 2;
  fault::FaultInjector a(f);
  fault::FaultInjector b(f);
  for (int k = 0; k < 100; ++k) {
    const sim::Time t = 1.7 * k;
    const fault::ExchangeOutcome x = a.exchange_outcome(0, 1, t);
    const fault::ExchangeOutcome y = a.exchange_outcome(0, 1, t);  // re-ask
    const fault::ExchangeOutcome z = b.exchange_outcome(0, 1, t);  // fresh
    EXPECT_EQ(x.delivered, y.delivered);
    EXPECT_EQ(x.attempts, y.attempts);
    EXPECT_EQ(x.delivered, z.delivered);
    EXPECT_EQ(x.attempts, z.attempts);
    EXPECT_GE(x.attempts, 1);
    EXPECT_LE(x.attempts, f.max_retries + 1);
    // A delivered exchange stops retrying at the successful attempt; an
    // undelivered one exhausted the whole budget.
    if (!x.delivered) {
      EXPECT_EQ(x.attempts, f.max_retries + 1);
    }
  }
}

TEST(FaultInjectorTest, CertainLossExhaustsRetryBudget) {
  auto f = base_config();
  f.message_loss = 1.0;
  f.max_retries = 3;
  fault::FaultInjector inj(f);
  const fault::ExchangeOutcome out = inj.exchange_outcome(2, 3, 10.0);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 4);

  auto clean = base_config();  // no loss, no outage processes
  fault::FaultInjector ok(clean);
  const fault::ExchangeOutcome first = ok.exchange_outcome(2, 3, 10.0);
  EXPECT_TRUE(first.delivered);
  EXPECT_EQ(first.attempts, 1);
}

TEST(FaultInjectorTest, TimelineIndependentOfQueryOrder) {
  auto f = base_config();
  f.link_mtbf_s = 100.0;
  f.link_mttr_s = 15.0;
  f.station_mtbf_s = 300.0;
  f.station_mttr_s = 40.0;
  std::vector<sim::Time> times;
  for (int k = 0; k < 120; ++k) times.push_back(3.1 * k);

  fault::FaultInjector forward(f);
  std::vector<bool> link_fwd;
  std::vector<bool> station_fwd;
  for (const sim::Time t : times) {
    link_fwd.push_back(forward.link_up(4, 5, t));
    station_fwd.push_back(forward.station_up(4, t));
  }

  // Query the exact same schedule backwards on a fresh injector: the
  // lazily extended timelines must produce identical states.
  fault::FaultInjector backward(f);
  std::vector<bool> link_bwd(times.size());
  std::vector<bool> station_bwd(times.size());
  for (std::size_t i = times.size(); i-- > 0;) {
    link_bwd[i] = backward.link_up(5, 4, times[i]);  // undirected
    station_bwd[i] = backward.station_up(4, times[i]);
  }
  EXPECT_EQ(link_fwd, link_bwd);
  EXPECT_EQ(station_fwd, station_bwd);

  // With a finite MTBF the link actually does go down somewhere in the
  // probed range (vacuity guard).
  EXPECT_TRUE(std::find(link_fwd.begin(), link_fwd.end(), false) !=
              link_fwd.end());
}

TEST(FaultInjectorTest, DistinctEntitiesHaveIndependentTimelines) {
  auto f = base_config();
  f.station_mtbf_s = 50.0;
  f.station_mttr_s = 10.0;
  fault::FaultInjector inj(f);
  std::vector<bool> s0;
  std::vector<bool> s1;
  for (int k = 0; k < 200; ++k) {
    s0.push_back(inj.station_up(0, 2.0 * k));
    s1.push_back(inj.station_up(1, 2.0 * k));
  }
  EXPECT_NE(s0, s1);  // derived streams decorrelate the entities
}

TEST(FaultInjectorTest, ScriptedOutagesAreHalfOpenWindows) {
  auto f = base_config();  // all stochastic processes off
  fault::ScriptedOutage link;
  link.kind = fault::ScriptedOutage::Kind::kLink;
  link.a = 1;
  link.b = 2;
  link.from = 10.0;
  link.until = 20.0;
  fault::ScriptedOutage station;
  station.kind = fault::ScriptedOutage::Kind::kStation;
  station.a = 3;
  station.from = 5.0;
  station.until = 6.0;
  f.outages = {link, station};
  fault::FaultInjector inj(f);

  EXPECT_TRUE(inj.link_up(1, 2, 9.999));
  EXPECT_FALSE(inj.link_up(1, 2, 10.0));  // closed at `from`
  EXPECT_FALSE(inj.link_up(2, 1, 19.999));
  EXPECT_TRUE(inj.link_up(1, 2, 20.0));  // open at `until`
  EXPECT_TRUE(inj.link_up(1, 3, 15.0));  // other links untouched

  EXPECT_TRUE(inj.station_up(3, 4.999));
  EXPECT_FALSE(inj.station_up(3, 5.0));
  EXPECT_TRUE(inj.station_up(3, 6.0));
  EXPECT_TRUE(inj.station_up(1, 5.5));

  // A downed link (or dead station) makes the exchange undeliverable
  // after the full retry ladder.
  const fault::ExchangeOutcome out = inj.exchange_outcome(1, 2, 15.0);
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, f.max_retries + 1);
  EXPECT_FALSE(inj.exchange_outcome(0, 3, 5.5).delivered);
  EXPECT_TRUE(inj.exchange_outcome(0, 3, 6.5).delivered);
}

}  // namespace
}  // namespace pabr
