// Degraded-mode behavior of the simulators under deterministic fault
// injection (DESIGN.md §10): station outages gate admissions and drop
// hand-ins, unreachable neighbours push AC2/AC3 onto local decisions and
// the reservation onto the static floor, healed pairs re-sync bitwise
// (invariant I9, PABR_CHECKed by the production path itself), and with
// faults disabled every trajectory stays byte-identical to a build that
// never heard of the subsystem.
#include <gtest/gtest.h>

#include <cstdint>

#include "audit/differential.h"
#include "core/random_scenario.h"
#include "core/scenario.h"
#include "core/system.h"

namespace pabr::core {
namespace {

#ifdef PABR_FAULT_ENABLED

SystemConfig quiet_config(admission::PolicyKind policy =
                              admission::PolicyKind::kStatic) {
  SystemConfig cfg;
  cfg.policy = policy;
  cfg.static_g = 0.0;
  cfg.workload.arrival_rate_per_cell = 0.0;
  return cfg;
}

traffic::ConnectionRequest make_request(traffic::ConnectionId id,
                                        geom::CellId cell, double pos_km,
                                        int dir, double speed_kmh,
                                        double lifetime_s) {
  traffic::ConnectionRequest r;
  r.id = id;
  r.cell = cell;
  r.position_km = pos_km;
  r.direction = dir;
  r.speed_kmh = speed_kmh;
  r.service = traffic::ServiceClass::kVoice;
  r.lifetime_s = lifetime_s;
  return r;
}

fault::ScriptedOutage station_outage(geom::CellId cell, sim::Time from,
                                     sim::Time until) {
  fault::ScriptedOutage o;
  o.kind = fault::ScriptedOutage::Kind::kStation;
  o.a = cell;
  o.from = from;
  o.until = until;
  return o;
}

fault::ScriptedOutage link_outage(geom::CellId a, geom::CellId b,
                                  sim::Time from, sim::Time until) {
  fault::ScriptedOutage o;
  o.kind = fault::ScriptedOutage::Kind::kLink;
  o.a = a;
  o.b = b;
  o.from = from;
  o.until = until;
  return o;
}

std::uint64_t counter_value(const telemetry::MetricsSnapshot& snap,
                            const std::string& name) {
  for (const auto& [key, value] : snap.counters) {
    if (key == name) return value;
  }
  return 0;
}

TEST(FaultSystemTest, StationDownBlocksNewAdmissions) {
  SystemConfig cfg = quiet_config();
  cfg.fault.enabled = true;
  cfg.fault.outages = {station_outage(3, 0.0, 10.0)};
  CellularSystem sys(cfg);

  // During the outage: refused before any admission test, no state left.
  EXPECT_FALSE(sys.submit_request(make_request(1, 3, 3.5, +1, 0.0, 100.0)));
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_EQ(sys.active_connections(), 0u);
  EXPECT_EQ(sys.cell_metrics(3).pcb.hits(), 1u);

  // Other cells are unaffected, and cell 3 recovers after the heal.
  EXPECT_TRUE(sys.submit_request(make_request(2, 5, 5.5, +1, 0.0, 100.0)));
  sys.run_for(11.0);
  EXPECT_TRUE(sys.submit_request(make_request(3, 3, 3.5, +1, 0.0, 100.0)));
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 1.0);
}

TEST(FaultSystemTest, StationDownDropsHandins) {
  SystemConfig cfg = quiet_config();
  cfg.fault.enabled = true;
  cfg.fault.outages = {station_outage(4, 10.0, 30.0)};
  CellularSystem sys(cfg);

  // At 3.5 km moving +1 at 100 km/h the 4.0 km boundary is crossed at
  // t = 18 s — inside cell 4's outage window. The hand-in is dropped.
  sys.submit_request(make_request(1, 3, 3.5, +1, 100.0, 1000.0));
  sys.run_for(20.0);
  EXPECT_EQ(sys.active_connections(), 0u);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(3), 0.0);
  EXPECT_DOUBLE_EQ(sys.used_bandwidth(4), 0.0);
  EXPECT_EQ(sys.cell_metrics(4).phd.hits(), 1u);
}

TEST(FaultSystemTest, UnreachableNeighborFallsBackAndSubstitutesFloor) {
  // A live AC3 workload with one scripted backhaul outage: while the
  // 3<->4 link is down, admissions in those cells decide AC1-locally and
  // the reservation substitutes the static floor for the severed p_h
  // terms; after the heal the stale pair caches re-sync (bitwise audited
  // by the production path — a divergence would throw, failing the test).
  StationaryParams p;
  p.offered_load = 120.0;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = 7;
  SystemConfig cfg = stationary_config(p);
  cfg.telemetry.enabled = true;
  cfg.telemetry.trace = false;
  cfg.fault.enabled = true;
  cfg.fault.outages = {link_outage(3, 4, 20.0, 40.0)};
  CellularSystem sys(cfg);
  sys.run_for(120.0);
  sys.audit_invariants();

  const telemetry::MetricsSnapshot snap = sys.telemetry_snapshot();
  if (snap.empty()) GTEST_SKIP() << "telemetry compiled out";
  EXPECT_GT(counter_value(snap, "fault.ac_local_fallbacks"), 0u);
  EXPECT_GT(counter_value(snap, "fault.floor_substitutions"), 0u);
  EXPECT_GT(counter_value(snap, "fault.pair_resyncs"), 0u);
  EXPECT_GT(counter_value(snap, "ac3.fallback_local"), 0u);
}

TEST(FaultSystemTest, RetriesRecoverLossAndAreCounted) {
  // Heavy per-message loss but a generous retry budget: most exchanges
  // still deliver (0.6^5 residual failure), and the retry/timeout
  // counters observe the ladder.
  StationaryParams p;
  p.offered_load = 100.0;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = 11;
  SystemConfig cfg = stationary_config(p);
  cfg.telemetry.enabled = true;
  cfg.telemetry.trace = false;
  cfg.fault.enabled = true;
  cfg.fault.message_loss = 0.4;
  cfg.fault.max_retries = 4;
  CellularSystem sys(cfg);
  sys.run_for(60.0);
  sys.audit_invariants();

  const telemetry::MetricsSnapshot snap = sys.telemetry_snapshot();
  if (snap.empty()) GTEST_SKIP() << "telemetry compiled out";
  EXPECT_GT(counter_value(snap, "fault.retries"), 0u);
  // Identical reruns reproduce the identical counter values — the fault
  // processes are part of the deterministic trajectory.
  CellularSystem again(cfg);
  again.run_for(60.0);
  const telemetry::MetricsSnapshot snap2 = again.telemetry_snapshot();
  EXPECT_EQ(counter_value(snap, "fault.retries"),
            counter_value(snap2, "fault.retries"));
  EXPECT_EQ(counter_value(snap, "fault.timeouts"),
            counter_value(snap2, "fault.timeouts"));
}

TEST(FaultSystemTest, DisabledFaultConfigIsInert) {
  // Every fault knob set — but enabled = false: the trajectory must be
  // byte-identical to a config that never mentions faults at all.
  const core::ScenarioSpec plain = core::random_scenario(21);
  core::ScenarioSpec armed = plain;
  fault::FaultConfig& f = armed.hex ? armed.grid.fault : armed.linear.fault;
  f.message_loss = 0.5;
  f.link_mtbf_s = 50.0;
  f.station_mtbf_s = 80.0;
  f.outages = {station_outage(0, 0.0, 1e9)};
  f.enabled = false;
  EXPECT_EQ(audit::run_scenario_digest(plain, true, 0),
            audit::run_scenario_digest(armed, true, 0));
}

TEST(FaultSystemTest, FaultTrajectoriesAreIncrementalScratchEqual) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const core::ScenarioSpec spec = core::random_scenario(seed, true);
    EXPECT_EQ(audit::run_scenario_digest(spec, true, 4),
              audit::run_scenario_digest(spec, false, 4))
        << spec.summary();
  }
}

#else  // !PABR_FAULT_ENABLED

TEST(FaultSystemTest, CompiledOut) {
  GTEST_SKIP() << "fault-injection hooks compiled out (PABR_FAULT=OFF)";
}

#endif

}  // namespace
}  // namespace pabr::core
