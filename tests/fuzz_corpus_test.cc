// Regression replay of the checked-in fuzz corpus (tests/corpus/).
//
// Every *.pabrfuzz genome in the corpus — minimized reproducers from
// past guided-fuzz findings plus hand-picked edge scenarios — must run
// clean under all oracles: invariant audits, incremental vs scratch
// reservation, and chained snapshot/resume (I10). Replay is also the
// determinism gate: the same genome must digest identically whether the
// batch runs on one thread or four.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/runner.h"
#include "sim/parallel.h"

namespace pabr::fuzz {
namespace {

std::vector<Genome> checked_in_corpus() {
  const std::vector<Genome> corpus = load_corpus(PABR_TEST_CORPUS_DIR);
  EXPECT_FALSE(corpus.empty()) << "no genomes under " << PABR_TEST_CORPUS_DIR;
  return corpus;
}

TEST(FuzzCorpusTest, EveryGenomeRunsCleanUnderAllOracles) {
  for (const Genome& g : checked_in_corpus()) {
    const OracleResult r = run_oracles(g, /*audit_every=*/16);
    EXPECT_TRUE(r.ok) << g.summary() << "\n[" << r.stage
                      << "] " << r.violation;
    EXPECT_EQ(r.incremental, r.scratch) << g.summary();
    EXPECT_EQ(r.incremental, r.resumed) << g.summary();
  }
}

TEST(FuzzCorpusTest, ReplayDigestsAreThreadCountInvariant) {
  const std::vector<Genome> corpus = checked_in_corpus();
  const auto run = [&](std::size_t i) {
    return run_oracles(corpus[i], /*audit_every=*/0);
  };
  const auto seq = sim::parallel_map<OracleResult>(1, corpus.size(), run);
  const auto par = sim::parallel_map<OracleResult>(4, corpus.size(), run);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_TRUE(seq[i].ok) << corpus[i].summary() << ": " << seq[i].violation;
    EXPECT_EQ(seq[i].incremental, par[i].incremental) << corpus[i].summary();
    EXPECT_EQ(seq[i].scratch, par[i].scratch) << corpus[i].summary();
    EXPECT_EQ(seq[i].resumed, par[i].resumed) << corpus[i].summary();
  }
}

// The corpus replay itself must be reproducible from the serialized
// artifacts alone: parse -> serialize -> parse yields the same digest.
TEST(FuzzCorpusTest, ArtifactsRoundTripBitwise) {
  for (const Genome& g : checked_in_corpus()) {
    EXPECT_EQ(g.serialize(), Genome::parse(g.serialize()).serialize());
  }
}

}  // namespace
}  // namespace pabr::fuzz
