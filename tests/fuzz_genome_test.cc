// Unit tests for the guided-fuzzer building blocks (DESIGN.md §15):
// genome serialization round-trips, canonicalization, the mutation /
// crossover catalogue, coverage bucketing, corpus disk round-trips and
// the delta-debugging minimizer on a synthetic predicate.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "fuzz/corpus.h"
#include "fuzz/coverage.h"
#include "fuzz/genome.h"
#include "fuzz/minimize.h"
#include "fuzz/mutate.h"
#include "fuzz/runner.h"
#include "sim/random.h"

namespace pabr::fuzz {
namespace {

TEST(GenomeTest, SerializeParseRoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    const Genome g = random_genome(seed, seed % 2 == 0);
    const std::string text = g.serialize();
    const Genome back = Genome::parse(text);
    EXPECT_EQ(text, back.serialize()) << "seed " << seed;
    EXPECT_EQ(g.digest(), back.digest()) << "seed " << seed;
  }
}

TEST(GenomeTest, CanonicalizeIsIdempotent) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    Genome g = random_genome(seed, true);
    const std::string once = g.serialize();
    g.canonicalize();
    EXPECT_EQ(once, g.serialize()) << "seed " << seed;
  }
}

TEST(GenomeTest, CanonicalizeClampsHostileValues) {
  Genome g;
  g.duration = -5.0;
  g.cells = 0;
  g.capacity_bu = 1e9;
  g.voice_ratio = 7.0;
  g.arrival_rate_per_cell = -1.0;
  g.speed_max_kmh = -3.0;
  g.snap_fractions = {2.0, -1.0, 0.5};
  g.canonicalize();
  EXPECT_GE(g.duration, 20.0);
  EXPECT_GE(g.cells, 1);
  EXPECT_LE(g.capacity_bu, 120.0);
  EXPECT_LE(g.voice_ratio, 1.0);
  EXPECT_GE(g.arrival_rate_per_cell, 0.0);
  EXPECT_GE(g.speed_max_kmh, g.speed_min_kmh);
  for (const double f : g.snap_fractions) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
  }
  // Must expand into a runnable scenario.
  const core::ScenarioSpec spec = g.to_scenario();
  EXPECT_GT(spec.duration, 0.0);
}

TEST(GenomeTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(Genome::parse(std::string("not a genome")), std::runtime_error);
  EXPECT_THROW(Genome::parse(std::string("pabrfuzz 99\n")), std::runtime_error);
  EXPECT_THROW(Genome::parse(std::string("pabrfuzz 1\nduration oops\n")),
               std::runtime_error);
}

TEST(MutateTest, EveryOperatorYieldsRunnableCanonicalGenome) {
  sim::Rng rng(99);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Genome parent = random_genome(seed, seed % 2 == 0);
    for (int op = 0; op < mutation_operator_count(); ++op) {
      Genome child = apply_mutation(parent, op, rng);
      const std::string text = child.serialize();
      child.canonicalize();
      EXPECT_EQ(text, child.serialize())
          << "operator " << op << " returned a non-canonical genome";
      EXPECT_NO_THROW(child.to_scenario()) << "operator " << op;
    }
  }
}

TEST(MutateTest, MutationAndCrossoverAreDeterministic) {
  const Genome a = random_genome(5, true);
  const Genome b = random_genome(6, false);
  sim::Rng r1(1234), r2(1234);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(mutate(a, r1).serialize(), mutate(a, r2).serialize());
    EXPECT_EQ(crossover(a, b, r1).serialize(),
              crossover(a, b, r2).serialize());
  }
}

TEST(CoverageTest, MagnitudeBucketsArePowersOfTwo) {
  EXPECT_EQ(magnitude_bucket(0), 0u);
  EXPECT_EQ(magnitude_bucket(1), 1u);
  EXPECT_EQ(magnitude_bucket(2), 2u);
  EXPECT_EQ(magnitude_bucket(3), 2u);
  EXPECT_EQ(magnitude_bucket(4), 4u);
  EXPECT_EQ(magnitude_bucket(1023), 512u);
  EXPECT_EQ(magnitude_bucket(1u << 20), 1u << 16);  // capped
}

TEST(CoverageTest, CoverageMapCountsOnlyNewFeatures) {
  CoverageMap map;
  Signature sig;
  sig.features = {"a", "b", "c"};
  EXPECT_EQ(map.merge(sig), 3u);
  EXPECT_EQ(map.merge(sig), 0u);
  sig.features = {"c", "d"};
  EXPECT_EQ(map.merge(sig), 1u);
  EXPECT_EQ(map.size(), 4u);
  EXPECT_TRUE(map.contains("d"));
  EXPECT_FALSE(map.contains("e"));
}

TEST(CoverageTest, SignatureSeparatesRegimes) {
  Genome linear = random_genome(3, false);
  linear.hex = false;
  linear.canonicalize();
  Genome hex = linear;
  hex.hex = true;
  hex.canonicalize();
  core::SystemStatus status;
  telemetry::MetricsSnapshot metrics;
  const Signature a = run_signature(linear, status, metrics, 0, 0);
  const Signature b = run_signature(hex, status, metrics, 0, 0);
  EXPECT_NE(a.features, b.features);
  // Signatures are sorted and unique.
  for (const Signature* s : {&a, &b}) {
    for (std::size_t i = 1; i < s->features.size(); ++i) {
      EXPECT_LT(s->features[i - 1], s->features[i]);
    }
  }
}

TEST(CorpusTest, SaveLoadRoundTripsSortedByFilename) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / "pabr_corpus_test").string();
  std::filesystem::remove_all(dir);
  std::vector<std::string> texts;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const Genome g = random_genome(seed, false);
    save_to_corpus(dir, g);
    texts.push_back(g.serialize());
  }
  // Saving the same genome twice dedups by digest filename.
  save_to_corpus(dir, random_genome(1, false));
  const std::vector<Genome> loaded = load_corpus(dir);
  ASSERT_EQ(loaded.size(), 5u);
  std::sort(texts.begin(), texts.end());
  std::vector<std::string> got;
  for (const Genome& g : loaded) got.push_back(g.serialize());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(texts, got);
  EXPECT_TRUE(load_corpus(dir + "/does-not-exist").empty());
  std::filesystem::remove_all(dir);
}

// The minimizer against a cheap synthetic predicate: "fails whenever
// adaptive QoS is on and there are at least 2 scripted outages". The
// 1-minimal repro must keep exactly those and shed everything else.
TEST(MinimizeTest, ShrinksToThePredicateCore) {
  Genome g = random_genome(17, true);
  g.adaptive_qos = true;
  g.hex = false;
  g.outages.resize(0);
  for (int i = 0; i < 6; ++i) {
    OutageGene o;
    o.station = i % 2 == 1;
    o.a = i % 3;
    o.b = (i + 1) % 3;
    o.from = 10.0 + i;
    o.until = 20.0 + i;
    g.outages.push_back(o);
  }
  g.snap_fractions = {0.2, 0.5, 0.9};
  g.canonicalize();
  const auto pred = [](const Genome& cand) {
    return !cand.hex && cand.adaptive_qos && cand.outages.size() >= 2;
  };
  ASSERT_TRUE(pred(g));
  MinimizeStats stats;
  const Genome mini = minimize(g, pred, 400, &stats);
  EXPECT_TRUE(pred(mini));
  EXPECT_EQ(mini.outages.size(), 2u);
  EXPECT_TRUE(mini.adaptive_qos);
  EXPECT_TRUE(mini.snap_fractions.empty());
  EXPECT_FALSE(mini.wired);
  EXPECT_FALSE(mini.retry);
  EXPECT_EQ(mini.cells, 1);
  EXPECT_GT(stats.accepted, 0);
  EXPECT_GT(stats.evaluations, 0);
}

TEST(MinimizeTest, IsDeterministic) {
  Genome g = random_genome(29, true);
  g.adaptive_qos = true;
  g.hex = false;
  g.canonicalize();
  const auto pred = [](const Genome& cand) { return cand.adaptive_qos; };
  const Genome a = minimize(g, pred, 200);
  const Genome b = minimize(g, pred, 200);
  EXPECT_EQ(a.serialize(), b.serialize());
}

// Mutation-testing hook: the planted off-by-one must only ever fire in
// the exact regime conjunction the smoke script is calibrated against.
TEST(RunnerTest, InjectedBugRequiresTheFullConjunction) {
  Genome g = random_genome(3, false);
  g.hex = false;
  g.ring = true;
  g.adaptive_qos = true;
  g.retry = true;
  g.wired = true;
  g.known_route_fraction = 0.5;
  g.soft_handoff_zone_km = 0.2;
  g.canonicalize();
  core::SystemStatus status;
  status.soft_fallbacks = 1;
  EXPECT_TRUE(injected_bug_fires(g, status));
  core::SystemStatus quiet;
  EXPECT_FALSE(injected_bug_fires(g, quiet));
  for (const auto& knock : {
           std::function<void(Genome&)>([](Genome& x) { x.hex = true; }),
           std::function<void(Genome&)>([](Genome& x) { x.ring = false; }),
           std::function<void(Genome&)>(
               [](Genome& x) { x.adaptive_qos = false; }),
           std::function<void(Genome&)>([](Genome& x) { x.retry = false; }),
           std::function<void(Genome&)>([](Genome& x) { x.wired = false; }),
           std::function<void(Genome&)>(
               [](Genome& x) { x.known_route_fraction = 0.0; }),
           std::function<void(Genome&)>(
               [](Genome& x) { x.soft_handoff_zone_km = 0.0; }),
       }) {
    Genome broken = g;
    knock(broken);
    EXPECT_FALSE(injected_bug_fires(broken, status));
  }
}

TEST(RunnerTest, OraclesPassOnARandomGenomeAndFillTheSignature) {
  Genome g = random_genome(8, false);
  g.duration = 40.0;
  g.canonicalize();
  const OracleResult r = run_oracles(g, /*audit_every=*/16);
  EXPECT_TRUE(r.ok) << r.stage << ": " << r.violation;
  EXPECT_EQ(r.incremental, r.scratch);
  EXPECT_EQ(r.incremental, r.resumed);
  EXPECT_FALSE(r.signature.features.empty());
}

}  // namespace
}  // namespace pabr::fuzz
