// Differential scenario fuzzing (smoke-sized; bench/fuzz_driver runs the
// hundreds-of-seeds version). Each seed expands deterministically into a
// randomized short simulation which must:
//
//   * survive a full per-event invariant audit (PABR_AUDIT builds) plus
//     an explicit end-of-run audit checkpoint (every build), and
//   * produce a bitwise-identical trajectory whether the reservation is
//     served incrementally or recomputed from scratch, and whether the
//     batch runs on one thread or several.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "audit/differential.h"
#include "core/random_scenario.h"
#include "sim/parallel.h"

namespace pabr {
namespace {

constexpr int kAuditEvery = 4;

TEST(FuzzScenarioTest, GeneratorIsDeterministic) {
  const core::ScenarioSpec a = core::random_scenario(7);
  const core::ScenarioSpec b = core::random_scenario(7);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(audit::run_scenario_digest(a, true, 0),
            audit::run_scenario_digest(b, true, 0));
  // Different seeds give different scenarios (vacuity guard).
  EXPECT_NE(a.summary(), core::random_scenario(8).summary());
}

TEST(FuzzScenarioTest, IncrementalMatchesScratchUnderAudit) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const core::ScenarioSpec spec = core::random_scenario(seed);
    const std::uint64_t incremental =
        audit::run_scenario_digest(spec, true, kAuditEvery);
    const std::uint64_t scratch =
        audit::run_scenario_digest(spec, false, kAuditEvery);
    EXPECT_EQ(incremental, scratch) << spec.summary();
  }
}

TEST(FuzzScenarioTest, DigestIndependentOfThreadCount) {
  constexpr std::uint64_t kBase = 100;
  constexpr std::size_t kSeeds = 8;
  const auto run_batch = [&](int threads) {
    return sim::parallel_map<std::uint64_t>(
        threads, kSeeds, [&](std::size_t i) {
          const core::ScenarioSpec spec =
              core::random_scenario(kBase + static_cast<std::uint64_t>(i));
          return audit::run_scenario_digest(spec, true, kAuditEvery);
        });
  };
  const std::vector<std::uint64_t> sequential = run_batch(1);
  const std::vector<std::uint64_t> parallel = run_batch(4);
  EXPECT_EQ(sequential, parallel);
}

// Fault-schedule corpus (random_scenario's with_faults = true): the
// differential contracts must survive link/station outages, message
// loss and degraded-mode reservation. In PABR_FAULT=OFF builds the
// schedules are inert and these degenerate to the plain suite — still
// worth running as a generator-determinism check.
TEST(FuzzScenarioTest, FaultSchedulesKeepIncrementalScratchEqual) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const core::ScenarioSpec spec = core::random_scenario(seed, true);
    const std::uint64_t incremental =
        audit::run_scenario_digest(spec, true, kAuditEvery);
    const std::uint64_t scratch =
        audit::run_scenario_digest(spec, false, kAuditEvery);
    EXPECT_EQ(incremental, scratch) << spec.summary();
  }
}

TEST(FuzzScenarioTest, FaultDigestIndependentOfThreadCount) {
  constexpr std::uint64_t kBase = 300;
  constexpr std::size_t kSeeds = 8;
  const auto run_batch = [&](int threads) {
    return sim::parallel_map<std::uint64_t>(
        threads, kSeeds, [&](std::size_t i) {
          const core::ScenarioSpec spec = core::random_scenario(
              kBase + static_cast<std::uint64_t>(i), true);
          return audit::run_scenario_digest(spec, true, kAuditEvery);
        });
  };
  EXPECT_EQ(run_batch(1), run_batch(4));
}

TEST(FuzzScenarioTest, FaultScheduleRidesOnSeparateStream) {
  // The schedule comes from its own named RNG stream: disabling it on a
  // with_faults expansion must reproduce the plain expansion's
  // trajectory exactly (the base scenario draw is unperturbed).
  for (std::uint64_t seed = 40; seed <= 44; ++seed) {
    const core::ScenarioSpec plain = core::random_scenario(seed);
    core::ScenarioSpec defused = core::random_scenario(seed, true);
    (defused.hex ? defused.grid.fault : defused.linear.fault).enabled = false;
    EXPECT_EQ(audit::run_scenario_digest(plain, true, 0),
              audit::run_scenario_digest(defused, true, 0))
        << plain.summary();
  }
}

}  // namespace
}  // namespace pabr
