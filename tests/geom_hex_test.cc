#include "geom/hex_topology.h"

#include <gtest/gtest.h>

#include <set>

#include "util/check.h"

namespace pabr::geom {
namespace {

using Direction = HexTopology::Direction;

TEST(HexTopologyTest, TorusEveryCellHasSixNeighbors) {
  HexTopology t(4, 6, /*wrap=*/true);
  EXPECT_EQ(t.num_cells(), 24);
  for (CellId c = 0; c < t.num_cells(); ++c) {
    EXPECT_EQ(t.neighbors(c).size(), 6u) << "cell " << c;
  }
}

TEST(HexTopologyTest, BoundedInteriorHasSixNeighbors) {
  HexTopology t(5, 5, /*wrap=*/false);
  // (2,2) is interior.
  EXPECT_EQ(t.neighbors(t.cell_of(2, 2)).size(), 6u);
}

TEST(HexTopologyTest, BoundedCornersHaveFewerNeighbors) {
  HexTopology t(5, 5, /*wrap=*/false);
  EXPECT_LT(t.neighbors(t.cell_of(0, 0)).size(), 6u);
  EXPECT_LT(t.neighbors(t.cell_of(4, 4)).size(), 6u);
}

TEST(HexTopologyTest, NeighborsAreDistinctAndNotSelf) {
  for (bool wrap : {false, true}) {
    HexTopology t(4, 6, wrap);
    for (CellId c = 0; c < t.num_cells(); ++c) {
      std::set<CellId> seen;
      for (CellId n : t.neighbors(c)) {
        EXPECT_NE(n, c);
        EXPECT_TRUE(seen.insert(n).second) << "duplicate neighbor of " << c;
      }
    }
  }
}

TEST(HexTopologyTest, AdjacencyIsSymmetric) {
  HexTopology t(4, 6, true);
  for (CellId a = 0; a < t.num_cells(); ++a) {
    for (CellId b : t.neighbors(a)) {
      EXPECT_TRUE(t.adjacent(b, a));
    }
  }
}

TEST(HexTopologyTest, RowColRoundTrip) {
  HexTopology t(4, 6, false);
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c < 6; ++c) {
      const CellId id = t.cell_of(r, c);
      EXPECT_EQ(t.row_of(id), r);
      EXPECT_EQ(t.col_of(id), c);
    }
  }
}

TEST(HexTopologyTest, OppositeDirectionsPairUp) {
  EXPECT_EQ(HexTopology::opposite(Direction::kN), Direction::kS);
  EXPECT_EQ(HexTopology::opposite(Direction::kS), Direction::kN);
  EXPECT_EQ(HexTopology::opposite(Direction::kNE), Direction::kSW);
  EXPECT_EQ(HexTopology::opposite(Direction::kSE), Direction::kNW);
  EXPECT_EQ(HexTopology::opposite(Direction::kNW), Direction::kSE);
  EXPECT_EQ(HexTopology::opposite(Direction::kSW), Direction::kNE);
}

TEST(HexTopologyTest, NeighborInAndDirectionBetweenAgree) {
  HexTopology t(4, 6, true);
  for (CellId c = 0; c < t.num_cells(); ++c) {
    for (int d = 0; d < HexTopology::kNumDirections; ++d) {
      const auto dir = static_cast<Direction>(d);
      const CellId n = t.neighbor_in(c, dir);
      ASSERT_NE(n, kNoCell);
      const auto back = t.direction_between(c, n);
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, dir);
    }
  }
}

TEST(HexTopologyTest, MovingOppositeReturnsHome) {
  HexTopology t(4, 6, true);
  for (CellId c = 0; c < t.num_cells(); ++c) {
    for (int d = 0; d < HexTopology::kNumDirections; ++d) {
      const auto dir = static_cast<Direction>(d);
      const CellId n = t.neighbor_in(c, dir);
      EXPECT_EQ(t.neighbor_in(n, HexTopology::opposite(dir)), c)
          << "cell " << c << " dir " << d;
    }
  }
}

TEST(HexTopologyTest, DirectionBetweenNonAdjacentIsEmpty) {
  HexTopology t(5, 5, false);
  EXPECT_FALSE(t.direction_between(t.cell_of(0, 0), t.cell_of(4, 4))
                   .has_value());
}

TEST(HexTopologyTest, BorderNeighborInReturnsNoCell) {
  HexTopology t(5, 5, false);
  EXPECT_EQ(t.neighbor_in(t.cell_of(0, 0), Direction::kN), kNoCell);
}

TEST(HexTopologyTest, StraightLineOnTorusComesBackAround) {
  HexTopology t(4, 6, true);
  // Going North `rows` times returns to start.
  CellId c = t.cell_of(2, 3);
  CellId walk = c;
  for (int i = 0; i < 4; ++i) walk = t.neighbor_in(walk, Direction::kN);
  EXPECT_EQ(walk, c);
}

TEST(HexTopologyTest, TorusRequiresEvenColumns) {
  EXPECT_THROW(HexTopology(4, 5, true), InvariantError);
  EXPECT_NO_THROW(HexTopology(4, 5, false));
}

TEST(HexTopologyTest, TooSmallGridRejected) {
  EXPECT_THROW(HexTopology(1, 6, false), InvariantError);
  EXPECT_THROW(HexTopology(6, 1, false), InvariantError);
}

TEST(HexTopologyTest, DescribeMentionsShape) {
  EXPECT_NE(HexTopology(4, 6, true).describe().find("torus"),
            std::string::npos);
}

}  // namespace
}  // namespace pabr::geom
