#include "geom/linear_topology.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace pabr::geom {
namespace {

TEST(LinearTopologyTest, RingNeighborsWrap) {
  LinearTopology t(10, 1.0, /*wrap=*/true);
  EXPECT_EQ(t.num_cells(), 10);
  EXPECT_EQ(t.neighbors(0), (std::vector<CellId>{9, 1}));
  EXPECT_EQ(t.neighbors(9), (std::vector<CellId>{8, 0}));
  EXPECT_EQ(t.neighbors(5), (std::vector<CellId>{4, 6}));
}

TEST(LinearTopologyTest, OpenRoadBordersHaveOneNeighbor) {
  LinearTopology t(10, 1.0, /*wrap=*/false);
  EXPECT_EQ(t.neighbors(0), (std::vector<CellId>{1}));
  EXPECT_EQ(t.neighbors(9), (std::vector<CellId>{8}));
  EXPECT_EQ(t.neighbors(4), (std::vector<CellId>{3, 5}));
}

TEST(LinearTopologyTest, AdjacencyIsSymmetric) {
  for (bool wrap : {false, true}) {
    LinearTopology t(6, 1.0, wrap);
    for (CellId a = 0; a < t.num_cells(); ++a) {
      for (CellId b : t.neighbors(a)) {
        EXPECT_TRUE(t.adjacent(b, a)) << "wrap=" << wrap << " " << a << "-"
                                      << b;
      }
      EXPECT_FALSE(t.adjacent(a, a));
    }
  }
}

TEST(LinearTopologyTest, CellAtMapsPositions) {
  LinearTopology t(10, 1.0, true);
  EXPECT_EQ(t.cell_at(0.0), 0);
  EXPECT_EQ(t.cell_at(0.999), 0);
  EXPECT_EQ(t.cell_at(1.0), 1);
  EXPECT_EQ(t.cell_at(9.5), 9);
}

TEST(LinearTopologyTest, CellAtWrapsOnRing) {
  LinearTopology t(10, 1.0, true);
  EXPECT_EQ(t.cell_at(10.5), 0);
  EXPECT_EQ(t.cell_at(-0.5), 9);
  EXPECT_EQ(t.cell_at(25.5), 5);
}

// Regression: positive_fmod used to return the modulus itself for a tiny
// negative position (float cancellation near the origin), so the wrapped
// coordinate landed exactly on road_length and cell_at rejected it.
TEST(LinearTopologyTest, CellAtTinyNegativePositionOnRing) {
  LinearTopology t(10, 1.0, true);
  EXPECT_EQ(t.cell_at(-1e-18), 0);
  const auto pos = t.canonical_position(-1e-18);
  ASSERT_TRUE(pos.has_value());
  EXPECT_GE(*pos, 0.0);
  EXPECT_LT(*pos, t.road_length_km());
}

TEST(LinearTopologyTest, CellAtOutsideOpenRoadThrows) {
  LinearTopology t(10, 1.0, false);
  EXPECT_THROW(t.cell_at(-0.1), InvariantError);
  EXPECT_THROW(t.cell_at(10.0), InvariantError);
}

// Regression: tiny negative positions from accumulated motion rounding
// used to fall straight through to the range check and throw mid-run.
// They are now clamped to the origin — but only inside the explicit
// kCellAtEpsilonKm band; genuinely out-of-road positions on either side
// still throw, and a division rounding artifact just under road_length
// can never floor() past the last cell.
TEST(LinearTopologyTest, CellAtEpsilonBandClampsAtBothEnds) {
  LinearTopology t(10, 1.0, false);
  EXPECT_EQ(t.cell_at(-1e-10), 0);  // inside the band: clamp to origin
  EXPECT_EQ(t.cell_at(0.0), 0);
  // Just under road_length: floor(x / D) of 10 - 1e-13 rounds to 10 in
  // the division; the band clamps it back onto the last cell.
  EXPECT_EQ(t.cell_at(std::nextafter(10.0, 0.0)), 9);
  // Outside the band on either side is still a hard error.
  EXPECT_THROW(t.cell_at(-1e-6), InvariantError);
  EXPECT_THROW(t.cell_at(10.0), InvariantError);
}

TEST(LinearTopologyTest, CanonicalPosition) {
  LinearTopology ring(10, 1.0, true);
  EXPECT_DOUBLE_EQ(*ring.canonical_position(12.5), 2.5);
  EXPECT_DOUBLE_EQ(*ring.canonical_position(-1.5), 8.5);

  LinearTopology open(10, 1.0, false);
  EXPECT_DOUBLE_EQ(*open.canonical_position(2.5), 2.5);
  EXPECT_FALSE(open.canonical_position(-0.1).has_value());
  EXPECT_FALSE(open.canonical_position(10.0).has_value());
}

TEST(LinearTopologyTest, NextBoundaryForward) {
  LinearTopology t(10, 1.0, true);
  const auto b = t.next_boundary(2.3, +1);
  EXPECT_DOUBLE_EQ(b.position_km, 3.0);
  EXPECT_EQ(b.current_cell, 2);
  EXPECT_EQ(b.next_cell, 3);
}

TEST(LinearTopologyTest, NextBoundaryBackward) {
  LinearTopology t(10, 1.0, true);
  const auto b = t.next_boundary(2.3, -1);
  EXPECT_DOUBLE_EQ(b.position_km, 2.0);
  EXPECT_EQ(b.current_cell, 2);
  EXPECT_EQ(b.next_cell, 1);
}

TEST(LinearTopologyTest, ExactlyOnBoundaryMovingForward) {
  LinearTopology t(10, 1.0, true);
  // At x = 3.0 moving forward, the mobile is in cell 3 heading to 4.
  const auto b = t.next_boundary(3.0, +1);
  EXPECT_DOUBLE_EQ(b.position_km, 4.0);
  EXPECT_EQ(b.current_cell, 3);
  EXPECT_EQ(b.next_cell, 4);
}

TEST(LinearTopologyTest, ExactlyOnBoundaryMovingBackward) {
  LinearTopology t(10, 1.0, true);
  // At x = 3.0 moving backward, the mobile is in cell 2 heading to 1.
  const auto b = t.next_boundary(3.0, -1);
  EXPECT_DOUBLE_EQ(b.position_km, 2.0);
  EXPECT_EQ(b.current_cell, 2);
  EXPECT_EQ(b.next_cell, 1);
}

TEST(LinearTopologyTest, RingWrapAtOrigin) {
  LinearTopology t(10, 1.0, true);
  const auto fwd = t.next_boundary(9.5, +1);
  EXPECT_DOUBLE_EQ(fwd.position_km, 10.0);
  EXPECT_EQ(fwd.next_cell, 0);

  const auto back = t.next_boundary(0.0, -1);
  EXPECT_DOUBLE_EQ(back.position_km, -1.0);
  EXPECT_EQ(back.current_cell, 9);
  EXPECT_EQ(back.next_cell, 8);
}

TEST(LinearTopologyTest, OpenRoadEndsReturnNoCell) {
  LinearTopology t(10, 1.0, false);
  const auto out_high = t.next_boundary(9.5, +1);
  EXPECT_EQ(out_high.next_cell, kNoCell);
  EXPECT_DOUBLE_EQ(out_high.position_km, 10.0);

  const auto out_low = t.next_boundary(0.5, -1);
  EXPECT_EQ(out_low.next_cell, kNoCell);
  EXPECT_DOUBLE_EQ(out_low.position_km, 0.0);
}

TEST(LinearTopologyTest, BadDirectionRejected) {
  LinearTopology t(10, 1.0, true);
  EXPECT_THROW(t.next_boundary(1.5, 0), InvariantError);
  EXPECT_THROW(t.next_boundary(1.5, 2), InvariantError);
}

TEST(LinearTopologyTest, DescribeMentionsShape) {
  EXPECT_NE(LinearTopology(10, 1.0, true).describe().find("ring"),
            std::string::npos);
  EXPECT_NE(LinearTopology(10, 1.0, false).describe().find("open"),
            std::string::npos);
}

TEST(LinearTopologyTest, ConstructionValidation) {
  EXPECT_THROW(LinearTopology(0, 1.0, true), InvariantError);
  EXPECT_THROW(LinearTopology(10, 0.0, true), InvariantError);
}

TEST(LinearTopologyTest, SingleCellIsLegal) {
  // A 1-cell ring wraps onto itself: the sole boundary leads back into
  // cell 0 and the neighbor list is empty (self-adjacency is motion,
  // not a hand-off relation).
  LinearTopology ring(1, 2.0, true);
  EXPECT_TRUE(ring.neighbors(0).empty());
  const auto b = ring.next_boundary(0.5, +1);
  EXPECT_EQ(b.next_cell, 0);
  EXPECT_GT(b.position_km, 0.5);
  // Open road: one cell, both ends fall off the road.
  LinearTopology open_road(1, 2.0, false);
  EXPECT_TRUE(open_road.neighbors(0).empty());
}

TEST(LinearTopologyTest, NonUnitDiameter) {
  LinearTopology t(4, 2.5, true);
  EXPECT_DOUBLE_EQ(t.road_length_km(), 10.0);
  EXPECT_EQ(t.cell_at(4.9), 1);
  EXPECT_EQ(t.cell_at(5.0), 2);
  const auto b = t.next_boundary(6.0, +1);
  EXPECT_DOUBLE_EQ(b.position_km, 7.5);
  EXPECT_EQ(b.next_cell, 3);
}

// Property sweep: from every sampled position and both directions, the
// boundary lies strictly ahead and maps to an adjacent (or border) cell.
struct BoundaryCase {
  double x;
  int direction;
  bool wrap;
};

class NextBoundaryProperty : public ::testing::TestWithParam<BoundaryCase> {};

TEST_P(NextBoundaryProperty, BoundaryIsAheadAndAdjacent) {
  const auto& c = GetParam();
  LinearTopology t(10, 1.0, c.wrap);
  const auto b = t.next_boundary(c.x, c.direction);
  if (c.direction > 0) {
    EXPECT_GT(b.position_km, c.x);
  } else {
    EXPECT_LT(b.position_km, c.x);
  }
  EXPECT_LE(std::abs(b.position_km - c.x), 1.0 + 1e-12);
  if (b.next_cell != kNoCell) {
    EXPECT_TRUE(t.adjacent(b.current_cell, b.next_cell));
  } else {
    EXPECT_FALSE(c.wrap);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NextBoundaryProperty,
    ::testing::Values(
        BoundaryCase{0.25, +1, true}, BoundaryCase{0.25, -1, true},
        BoundaryCase{0.25, +1, false}, BoundaryCase{0.25, -1, false},
        BoundaryCase{4.999, +1, true}, BoundaryCase{5.0, -1, true},
        BoundaryCase{5.0, +1, true}, BoundaryCase{9.75, +1, true},
        BoundaryCase{9.75, -1, false}, BoundaryCase{9.75, +1, false},
        BoundaryCase{0.0, +1, true}, BoundaryCase{0.0, -1, true}));

}  // namespace
}  // namespace pabr::geom
