#include "hoef/calendar.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::hoef {
namespace {

constexpr geom::CellId kSelf = 0;
constexpr geom::CellId kLeft = 1;
constexpr geom::CellId kRight = 2;

CalendarConfig wide_config() {
  CalendarConfig cfg;
  cfg.t_int = 2.0 * sim::kHour;
  return cfg;
}

sim::Time day_at(int day, double hour) {
  return day * sim::kDay + hour * sim::kHour;
}

TEST(CalendarTest, WeekendDetectionFromMondayStart) {
  CalendarEstimator e(kSelf, wide_config());
  EXPECT_FALSE(e.is_weekend(day_at(0, 12.0)));  // Monday
  EXPECT_FALSE(e.is_weekend(day_at(4, 12.0)));  // Friday
  EXPECT_TRUE(e.is_weekend(day_at(5, 12.0)));   // Saturday
  EXPECT_TRUE(e.is_weekend(day_at(6, 12.0)));   // Sunday
  EXPECT_FALSE(e.is_weekend(day_at(7, 12.0)));  // next Monday
  EXPECT_TRUE(e.is_weekend(day_at(12, 0.5)));   // next Saturday
}

TEST(CalendarTest, StartDayOffsetShiftsWeekend) {
  CalendarConfig cfg = wide_config();
  cfg.start_day_of_week = 5;  // simulation starts on a Saturday
  CalendarEstimator e(kSelf, cfg);
  EXPECT_TRUE(e.is_weekend(day_at(0, 12.0)));
  EXPECT_TRUE(e.is_weekend(day_at(1, 12.0)));
  EXPECT_FALSE(e.is_weekend(day_at(2, 12.0)));  // Monday
}

TEST(CalendarTest, RecordsRouteToTheMatchingSet) {
  CalendarEstimator e(kSelf, wide_config());
  e.record({day_at(0, 9.0), kLeft, kRight, 30.0});  // Monday
  e.record({day_at(5, 9.0), kLeft, kRight, 90.0});  // Saturday
  EXPECT_EQ(e.weekday_set().cached_events(), 1u);
  EXPECT_EQ(e.weekend_set().cached_events(), 1u);
  EXPECT_EQ(e.cached_events(), 2u);
}

TEST(CalendarTest, WeekdayQueryIgnoresWeekendBehavior) {
  CalendarEstimator e(kSelf, wide_config());
  // Weekday commuters cross fast (30 s), weekend strollers slowly (90 s).
  e.record({day_at(0, 9.0), kLeft, kRight, 30.0});
  e.record({day_at(5, 9.0), kLeft, kRight, 90.0});
  // Tuesday 9 am: only the weekday set answers -> 30 s events reachable
  // with T_est = 40.
  const sim::Time tue = day_at(1, 9.0);
  EXPECT_DOUBLE_EQ(e.handoff_probability(tue, kLeft, kRight, 0.0, 40.0),
                   1.0);
  EXPECT_DOUBLE_EQ(e.max_sojourn(tue), 30.0);
}

TEST(CalendarTest, WeekendQueryUsesWeeklyPeriod) {
  CalendarEstimator e(kSelf, wide_config());
  e.record({day_at(5, 9.0), kLeft, kRight, 90.0});  // Saturday week 0
  // Saturday of week 1, same time of day: the weekend set's T_week window
  // (n = 1) picks it up.
  const sim::Time next_sat = day_at(12, 9.0);
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(next_sat, kLeft, kRight, 0.0, 90.0), 1.0);
  // But a weekday between them sees nothing.
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(day_at(9, 9.0), kLeft, kRight, 0.0, 90.0), 0.0);
}

TEST(CalendarTest, SundayEventNotVisibleOnSaturdayOfNextWeekAtOtherHour) {
  CalendarEstimator e(kSelf, wide_config());
  e.record({day_at(6, 9.0), kLeft, kRight, 50.0});  // Sunday 9 am
  // Next Sunday 9 am: visible (T_week period).
  EXPECT_GT(
      e.handoff_probability(day_at(13, 9.0), kLeft, kRight, 0.0, 50.0),
      0.0);
  // Next Sunday 3 pm: outside the +/- 2 h window.
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(day_at(13, 15.0), kLeft, kRight, 0.0, 50.0),
      0.0);
}

TEST(CalendarTest, AnyHandoffAndMaxSojournRouteByDayClass) {
  CalendarEstimator e(kSelf, wide_config());
  e.record({day_at(0, 9.0), kLeft, kRight, 30.0});
  e.record({day_at(5, 9.0), kLeft, kRight, 90.0});
  EXPECT_DOUBLE_EQ(e.max_sojourn(day_at(1, 9.0)), 30.0);   // weekday view
  EXPECT_DOUBLE_EQ(e.max_sojourn(day_at(12, 9.0)), 90.0);  // weekend view
  EXPECT_DOUBLE_EQ(
      e.any_handoff_probability(day_at(1, 9.0), kLeft, 0.0, 30.0), 1.0);
}

TEST(CalendarTest, PruneAgesBothSets) {
  CalendarEstimator e(kSelf, wide_config());
  e.record({day_at(0, 9.0), kLeft, kRight, 30.0});
  e.record({day_at(5, 9.0), kLeft, kRight, 90.0});
  // Far beyond both horizons (weekday: 1 day + T_int; weekend: 1 week +
  // T_int).
  e.prune(day_at(30, 0.0));
  EXPECT_EQ(e.cached_events(), 0u);
}

TEST(CalendarTest, Validation) {
  CalendarConfig bad = wide_config();
  bad.start_day_of_week = 7;
  EXPECT_THROW(CalendarEstimator(kSelf, bad), InvariantError);
  CalendarEstimator e(kSelf, wide_config());
  EXPECT_THROW(e.is_weekend(-1.0), InvariantError);
}

}  // namespace
}  // namespace pabr::hoef
