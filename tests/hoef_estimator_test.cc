// Hand-constructed checks of the hand-off estimation function (§3.1) and
// the Bayes hand-off probability (Eq. 4).
#include "hoef/estimator.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::hoef {
namespace {

EstimatorConfig infinite_window() {
  EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  return cfg;
}

// Cell 0 with neighbours 1 and 2 (1-D style); prev == 0 means "started in
// cell 0".
constexpr geom::CellId kSelf = 0;
constexpr geom::CellId kLeft = 1;
constexpr geom::CellId kRight = 2;

TEST(HoefTest, EmptyEstimatorPredictsStationary) {
  HandoffEstimator e(kSelf, infinite_window());
  EXPECT_DOUBLE_EQ(e.handoff_probability(100.0, kLeft, kRight, 0.0, 10.0),
                   0.0);
  EXPECT_DOUBLE_EQ(e.max_sojourn(100.0), 0.0);
  EXPECT_TRUE(e.footprint(100.0, kLeft).empty());
  EXPECT_EQ(e.cached_events(), 0u);
}

TEST(HoefTest, SingleEventGivesCertainPrediction) {
  HandoffEstimator e(kSelf, infinite_window());
  // One mobile from cell 1 crossed to cell 2 after 30 s.
  e.record({100.0, kLeft, kRight, 30.0});
  // A fresh mobile from cell 1 (extant 0): within 30 s it should hand off
  // to cell 2 with probability 1.
  EXPECT_DOUBLE_EQ(e.handoff_probability(200.0, kLeft, kRight, 0.0, 30.0),
                   1.0);
  // Window too small to reach the observed sojourn: probability 0.
  EXPECT_DOUBLE_EQ(e.handoff_probability(200.0, kLeft, kRight, 0.0, 29.0),
                   0.0);
}

TEST(HoefTest, Eq4NumeratorDenominatorArithmetic) {
  HandoffEstimator e(kSelf, infinite_window());
  // Four observations from prev = 1: sojourns 10, 20 (to right), 30, 40
  // (to left... actually to kLeft and kRight mixed).
  e.record({10.0, kLeft, kRight, 10.0});
  e.record({11.0, kLeft, kRight, 20.0});
  e.record({12.0, kLeft, kLeft, 30.0});  // turned around
  e.record({13.0, kLeft, kRight, 40.0});

  // Extant sojourn 15 s: denominator = events with T_soj > 15 -> {20,30,40}
  // (weight 3). Numerator for next = kRight within T_est = 10:
  // 15 < T_soj <= 25 -> {20} (weight 1). p = 1/3.
  EXPECT_NEAR(e.handoff_probability(50.0, kLeft, kRight, 15.0, 10.0),
              1.0 / 3.0, 1e-12);
  // For next = kLeft within T_est = 20: 15 < T_soj <= 35 -> {30}. p = 1/3.
  EXPECT_NEAR(e.handoff_probability(50.0, kLeft, kLeft, 15.0, 20.0),
              1.0 / 3.0, 1e-12);
  // Wide window captures everything remaining: p(right) = 2/3.
  EXPECT_NEAR(e.handoff_probability(50.0, kLeft, kRight, 15.0, 1000.0),
              2.0 / 3.0, 1e-12);
}

TEST(HoefTest, DenominatorConditionIsStrict) {
  HandoffEstimator e(kSelf, infinite_window());
  e.record({10.0, kLeft, kRight, 30.0});
  // Extant sojourn exactly 30: the only event does NOT outlast it
  // (T_soj > T_ext-soj is strict) -> stationary.
  EXPECT_DOUBLE_EQ(e.handoff_probability(50.0, kLeft, kRight, 30.0, 100.0),
                   0.0);
  // Just below 30 it is alive.
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(50.0, kLeft, kRight, 29.999, 100.0), 1.0);
}

TEST(HoefTest, NumeratorUpperBoundIsInclusive) {
  HandoffEstimator e(kSelf, infinite_window());
  e.record({10.0, kLeft, kRight, 30.0});
  // extant 20, T_est 10: 20 < 30 <= 30 -> included.
  EXPECT_DOUBLE_EQ(e.handoff_probability(50.0, kLeft, kRight, 20.0, 10.0),
                   1.0);
}

TEST(HoefTest, PrevHistoriesAreSeparate) {
  HandoffEstimator e(kSelf, infinite_window());
  e.record({10.0, kLeft, kRight, 10.0});
  e.record({11.0, kSelf, kLeft, 200.0});  // started-here behaves differently
  // Query for prev = self must not see the prev = kLeft event.
  EXPECT_DOUBLE_EQ(e.handoff_probability(50.0, kSelf, kRight, 0.0, 50.0),
                   0.0);
  EXPECT_DOUBLE_EQ(e.handoff_probability(50.0, kSelf, kLeft, 0.0, 200.0),
                   1.0);
}

TEST(HoefTest, AnyHandoffSumsOverNextCells) {
  HandoffEstimator e(kSelf, infinite_window());
  e.record({10.0, kLeft, kRight, 10.0});
  e.record({11.0, kLeft, kLeft, 20.0});
  e.record({12.0, kLeft, kRight, 120.0});
  // extant 0, T_est 25: events {10, 20} of 3 -> 2/3; equals the sum of the
  // per-next probabilities.
  const double any = e.any_handoff_probability(50.0, kLeft, 0.0, 25.0);
  const double sum =
      e.handoff_probability(50.0, kLeft, kRight, 0.0, 25.0) +
      e.handoff_probability(50.0, kLeft, kLeft, 0.0, 25.0);
  EXPECT_NEAR(any, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(any, sum, 1e-12);
}

TEST(HoefTest, MaxSojournTracksUsableEvents) {
  HandoffEstimator e(kSelf, infinite_window());
  e.record({10.0, kLeft, kRight, 33.0});
  e.record({12.0, kSelf, kRight, 95.0});
  EXPECT_DOUBLE_EQ(e.max_sojourn(50.0), 95.0);
}

TEST(HoefTest, NQuadKeepsNewestUnderInfiniteWindow) {
  EstimatorConfig cfg = infinite_window();
  cfg.n_quad = 3;
  HandoffEstimator e(kSelf, cfg);
  // Five events to the same (prev, next); only the newest three (sojourns
  // 30, 40, 50) may be used.
  for (int i = 0; i < 5; ++i) {
    e.record({static_cast<double>(10 + i), kLeft, kRight,
              10.0 * (i + 1)});
  }
  EXPECT_EQ(e.cached_events(), 3u);
  // An extant sojourn of 15 would have been outlasted by the evicted
  // sojourn-20 event; with only {30,40,50} alive, p within T_est=15 is
  // 1/3 (only the 30 s event falls in (15, 30]).
  EXPECT_NEAR(e.handoff_probability(100.0, kLeft, kRight, 15.0, 15.0),
              1.0 / 3.0, 1e-12);
}

TEST(HoefTest, NQuadIsPerPrevNextPair) {
  EstimatorConfig cfg = infinite_window();
  cfg.n_quad = 2;
  HandoffEstimator e(kSelf, cfg);
  for (int i = 0; i < 4; ++i) {
    e.record({static_cast<double>(i), kLeft, kRight, 10.0});
    e.record({static_cast<double>(i), kLeft, kLeft, 10.0});
  }
  EXPECT_EQ(e.cached_events(), 4u);  // 2 per (prev,next) pair
}

TEST(HoefTest, FootprintExposesSelectedQuadruplets) {
  HandoffEstimator e(kSelf, infinite_window());
  e.record({10.0, kLeft, kRight, 12.0});
  e.record({11.0, kLeft, kLeft, 34.0});
  const auto fp = e.footprint(50.0, kLeft);
  ASSERT_EQ(fp.size(), 2u);
  double total_weight = 0.0;
  for (const auto& p : fp) {
    EXPECT_TRUE(p.next == kLeft || p.next == kRight);
    EXPECT_EQ(p.window, 0);
    total_weight += p.weight;
  }
  EXPECT_DOUBLE_EQ(total_weight, 2.0);
}

TEST(HoefTest, RecordValidation) {
  HandoffEstimator e(kSelf, infinite_window());
  e.record({10.0, kLeft, kRight, 5.0});
  // Event times must be non-decreasing.
  EXPECT_THROW(e.record({9.0, kLeft, kRight, 5.0}), InvariantError);
  // next must be a real, different cell.
  EXPECT_THROW(e.record({11.0, kLeft, kSelf, 5.0}), InvariantError);
  EXPECT_THROW(e.record({11.0, kLeft, geom::kNoCell, 5.0}), InvariantError);
  EXPECT_THROW(e.record({11.0, kLeft, kRight, -1.0}), InvariantError);
}

TEST(HoefTest, ConfigValidation) {
  EstimatorConfig bad;
  bad.n_quad = 0;
  EXPECT_THROW(HandoffEstimator(0, bad), InvariantError);
  EstimatorConfig inc;
  inc.weights = {0.5, 1.0};  // increasing — violates Eq. (3)
  EXPECT_THROW(HandoffEstimator(0, inc), InvariantError);
  EstimatorConfig empty;
  empty.weights = {};
  EXPECT_THROW(HandoffEstimator(0, empty), InvariantError);
}

// ---- Finite T_int (periodic daily windows) --------------------------------

EstimatorConfig daily_window() {
  EstimatorConfig cfg;
  cfg.t_int = sim::kHour;      // +/- 1 h around the same time of day
  cfg.n_win_periods = 1;       // today and yesterday
  cfg.weights = {1.0, 1.0};    // w_0 = w_1 = 1 (paper §5.1)
  cfg.snapshot_tolerance = 1.0;
  return cfg;
}

TEST(HoefFiniteWindowTest, EventOutsideWindowIsIgnored) {
  HandoffEstimator e(kSelf, daily_window());
  // Event at t = 1000 s; query at t = 1000 + 2 h: outside [t0-1h, t0].
  e.record({1000.0, kLeft, kRight, 30.0});
  const sim::Time t0 = 1000.0 + 2.0 * sim::kHour;
  EXPECT_DOUBLE_EQ(e.handoff_probability(t0, kLeft, kRight, 0.0, 30.0), 0.0);
  // Within the window it is used.
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(1000.0 + 0.5 * sim::kHour, kLeft, kRight, 0.0,
                            30.0),
      1.0);
}

TEST(HoefFiniteWindowTest, YesterdaySameTimeOfDayIsUsed) {
  HandoffEstimator e(kSelf, daily_window());
  const sim::Time yesterday_9am = 9.0 * sim::kHour;
  e.record({yesterday_9am, kLeft, kRight, 30.0});
  // Today 9 am (one period later): the n = 1 window picks it up.
  const sim::Time today_9am = yesterday_9am + sim::kDay;
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(today_9am, kLeft, kRight, 0.0, 30.0), 1.0);
  // Today 3 pm: neither window covers the event.
  EXPECT_DOUBLE_EQ(e.handoff_probability(today_9am + 6 * sim::kHour, kLeft,
                                         kRight, 0.0, 30.0),
                   0.0);
}

TEST(HoefFiniteWindowTest, EventsOlderThanNWinPeriodsExpire) {
  HandoffEstimator e(kSelf, daily_window());  // N_win = 1
  const sim::Time t_event = 9.0 * sim::kHour;
  e.record({t_event, kLeft, kRight, 30.0});
  // Two days later at the same time of day: n = 2 > N_win, weight 0.
  const sim::Time t0 = t_event + 2.0 * sim::kDay;
  EXPECT_DOUBLE_EQ(e.handoff_probability(t0, kLeft, kRight, 0.0, 30.0), 0.0);
}

TEST(HoefFiniteWindowTest, WeightsBiasRecentDays) {
  EstimatorConfig cfg = daily_window();
  cfg.weights = {1.0, 0.5};
  HandoffEstimator e(kSelf, cfg);
  const sim::Time nine_am = 9.0 * sim::kHour;
  // Yesterday 9 am: goes right after 10 s (weight 0.5 today).
  e.record({nine_am, kLeft, kRight, 10.0});
  // Today 8:30 am: goes left after 10 s (weight 1.0 at 9 am).
  e.record({nine_am + sim::kDay - 0.5 * sim::kHour, kLeft, kLeft, 10.0});
  const sim::Time t0 = nine_am + sim::kDay;
  // p(right) = 0.5 / 1.5, p(left) = 1.0 / 1.5.
  EXPECT_NEAR(e.handoff_probability(t0, kLeft, kRight, 0.0, 10.0),
              0.5 / 1.5, 1e-12);
  EXPECT_NEAR(e.handoff_probability(t0, kLeft, kLeft, 0.0, 10.0), 1.0 / 1.5,
              1e-12);
}

TEST(HoefFiniteWindowTest, PruneDropsOutOfDateEvents) {
  HandoffEstimator e(kSelf, daily_window());
  e.record({1000.0, kLeft, kRight, 30.0});
  EXPECT_EQ(e.cached_events(), 1u);
  // Pruning at a time when even the n = N_win window has passed.
  e.prune(1000.0 + 2.0 * sim::kDay);
  EXPECT_EQ(e.cached_events(), 0u);
}

TEST(HoefFiniteWindowTest, RecordAutoPrunesStaleEventsInSameSeries) {
  HandoffEstimator e(kSelf, daily_window());
  e.record({0.0, kLeft, kRight, 5.0});
  // Recording far in the future drops the stale event from that deque.
  e.record({3.0 * sim::kDay, kLeft, kRight, 7.0});
  EXPECT_EQ(e.cached_events(), 1u);
}

TEST(HoefFiniteWindowTest, PriorityPrefersTodayOverYesterday) {
  EstimatorConfig cfg = daily_window();
  cfg.n_quad = 1;  // only one quadruplet survives per (prev, next)
  HandoffEstimator e(kSelf, cfg);
  const sim::Time nine_am = 9.0 * sim::kHour;
  // Yesterday 9:00 sharp (distance 0 from the n = 1 window centre) with a
  // distinctive sojourn...
  e.record({nine_am, kLeft, kRight, 99.0});
  // ...and today 8:30 (n = 0 window, 30 min off-centre) with another.
  e.record({nine_am + sim::kDay - 0.5 * sim::kHour, kLeft, kRight, 10.0});
  // §3.1 priority: smaller n wins BEFORE centre distance, so today's
  // event is kept: a sojourn-99 query finds nothing.
  const sim::Time t0 = nine_am + sim::kDay;
  EXPECT_DOUBLE_EQ(e.handoff_probability(t0, kLeft, kRight, 50.0, 100.0),
                   0.0);
  EXPECT_DOUBLE_EQ(e.handoff_probability(t0, kLeft, kRight, 0.0, 10.0),
                   1.0);
}

TEST(HoefFiniteWindowTest, PriorityWithinWindowPrefersCentre) {
  EstimatorConfig cfg = daily_window();
  cfg.n_quad = 1;
  HandoffEstimator e(kSelf, cfg);
  const sim::Time nine_am = 9.0 * sim::kHour;
  // Two events in today's window: 8:10 (50 min off-centre, sojourn 99)
  // and 8:50 (10 min off-centre, sojourn 10).
  e.record({nine_am - 50.0 * sim::kMinute, kLeft, kRight, 99.0});
  e.record({nine_am - 10.0 * sim::kMinute, kLeft, kRight, 10.0});
  // The event closer to the window centre (t0 itself) survives.
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(nine_am, kLeft, kRight, 50.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(
      e.handoff_probability(nine_am, kLeft, kRight, 0.0, 10.0), 1.0);
}

TEST(HoefFiniteWindowTest, OverlappingWindowsCountEventOnce) {
  // 2*T_int > period: the same event falls into both the n = 0 and n = 1
  // windows; the smaller n must win (it is counted once, with w_0).
  EstimatorConfig cfg;
  cfg.t_int = 0.75 * sim::kDay;  // windows are 1.5 days wide
  cfg.period = sim::kDay;
  cfg.n_win_periods = 1;
  cfg.weights = {1.0, 0.5};
  cfg.snapshot_tolerance = 1.0;
  HandoffEstimator e(kSelf, cfg);
  e.record({0.5 * sim::kDay, kLeft, kRight, 30.0});
  // Query at t0 = 1.0 day: the event is inside [t0-T_int, t0] (n = 0) and
  // also inside the n = 1 window [t0-T_int-P, t0+T_int-P).
  const auto fp = e.footprint(1.0 * sim::kDay, kLeft);
  ASSERT_EQ(fp.size(), 1u);
  EXPECT_EQ(fp[0].window, 0);
  EXPECT_DOUBLE_EQ(fp[0].weight, 1.0);  // w_0, not w_0 + w_1
}

TEST(HoefFiniteWindowTest, SnapshotRefreshesAsTimeDrifts) {
  HandoffEstimator e(kSelf, daily_window());
  e.record({1000.0, kLeft, kRight, 30.0});
  // Query inside the window first (snapshot built at t0 = 1000 + 600 s).
  EXPECT_GT(
      e.handoff_probability(1600.0, kLeft, kRight, 0.0, 30.0), 0.0);
  // Much later the same snapshot would be stale: the estimator must
  // rebuild and report 0.
  EXPECT_DOUBLE_EQ(e.handoff_probability(1000.0 + 3 * sim::kHour, kLeft,
                                         kRight, 0.0, 30.0),
                   0.0);
}

// Regression: snapshot freshness was a fabs() band, so a snapshot built
// at B could be reused by a query at t0 < B (up to the tolerance). The
// reuse is now one-sided — only t0 >= built_at qualifies — because an
// event recorded between t0 and B is visible to the snapshot but is
// still in the future of the earlier query.
TEST(HoefFiniteWindowTest, SnapshotReuseIsOneSided) {
  HandoffEstimator e(kSelf, daily_window());  // snapshot_tolerance = 1 s
  e.record({1000.0, kLeft, kRight, 30.0});
  // Build the snapshot just after the event: the event is usable.
  EXPECT_DOUBLE_EQ(e.handoff_probability(1000.5, kLeft, kRight, 0.0, 30.0),
                   1.0);
  // Forward reuse inside the band still works, including the exact
  // age == tolerance boundary.
  EXPECT_DOUBLE_EQ(e.handoff_probability(1001.5, kLeft, kRight, 0.0, 30.0),
                   1.0);
  // Query just BEFORE the event, within the tolerance of the snapshot
  // built at 1000.5: reusing it would leak the future event into the
  // past — the one-sided check forces a rebuild and reports 0.
  EXPECT_DOUBLE_EQ(e.handoff_probability(999.9, kLeft, kRight, 0.0, 30.0),
                   0.0);
}

}  // namespace
}  // namespace pabr::hoef
