// Property-style sweeps over randomly generated hand-off histories:
// invariants of the Bayes estimator that must hold for ANY history.
#include <gtest/gtest.h>

#include <vector>

#include "hoef/estimator.h"
#include "sim/random.h"

namespace pabr::hoef {
namespace {

constexpr geom::CellId kSelf = 0;
constexpr geom::CellId kNexts[] = {1, 2};
constexpr geom::CellId kPrevs[] = {0, 1, 2};

struct HistoryParams {
  std::uint64_t seed;
  int events;
  int n_quad;
};

class HoefPropertyTest : public ::testing::TestWithParam<HistoryParams> {
 protected:
  HandoffEstimator make_estimator() {
    const auto& p = GetParam();
    EstimatorConfig cfg;
    cfg.t_int = sim::kInfiniteDuration;
    cfg.n_quad = p.n_quad;
    HandoffEstimator e(kSelf, cfg);
    sim::Rng rng(p.seed);
    sim::Time t = 0.0;
    for (int i = 0; i < p.events; ++i) {
      t += rng.exponential(5.0);
      Quadruplet q;
      q.event_time = t;
      q.prev = kPrevs[rng.uniform_int(0, 2)];
      q.next = kNexts[rng.uniform_int(0, 1)];
      q.sojourn = rng.uniform(1.0, 120.0);
      e.record(q);
    }
    last_event_time_ = t;
    return e;
  }
  sim::Time last_event_time_ = 0.0;
};

TEST_P(HoefPropertyTest, ProbabilitiesAreProbabilities) {
  auto e = make_estimator();
  const sim::Time t0 = last_event_time_ + 1.0;
  sim::Rng rng(GetParam().seed ^ 0xABCDEF);
  for (int i = 0; i < 200; ++i) {
    const geom::CellId prev = kPrevs[rng.uniform_int(0, 2)];
    const double ext = rng.uniform(0.0, 150.0);
    const double t_est = rng.uniform(0.0, 150.0);
    double sum = 0.0;
    for (geom::CellId next : kNexts) {
      const double p = e.handoff_probability(t0, prev, next, ext, t_est);
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0);
      sum += p;
    }
    EXPECT_LE(sum, 1.0 + 1e-9);
    EXPECT_NEAR(sum, e.any_handoff_probability(t0, prev, ext, t_est), 1e-9);
  }
}

TEST_P(HoefPropertyTest, MonotoneInEstimationWindow) {
  auto e = make_estimator();
  const sim::Time t0 = last_event_time_ + 1.0;
  sim::Rng rng(GetParam().seed ^ 0x1234);
  for (int i = 0; i < 100; ++i) {
    const geom::CellId prev = kPrevs[rng.uniform_int(0, 2)];
    const geom::CellId next = kNexts[rng.uniform_int(0, 1)];
    const double ext = rng.uniform(0.0, 100.0);
    double last = 0.0;
    for (double t_est : {1.0, 5.0, 20.0, 60.0, 200.0}) {
      const double p = e.handoff_probability(t0, prev, next, ext, t_est);
      EXPECT_GE(p, last - 1e-12)
          << "p_h must be non-decreasing in T_est (paper §4.1)";
      last = p;
    }
  }
}

TEST_P(HoefPropertyTest, StationaryBeyondMaxSojourn) {
  auto e = make_estimator();
  const sim::Time t0 = last_event_time_ + 1.0;
  const double max_soj = e.max_sojourn(t0);
  for (geom::CellId prev : kPrevs) {
    for (geom::CellId next : kNexts) {
      EXPECT_DOUBLE_EQ(
          e.handoff_probability(t0, prev, next, max_soj + 1.0, 1000.0), 0.0);
    }
  }
}

TEST_P(HoefPropertyTest, CacheBoundedByNQuadPerPair) {
  auto e = make_estimator();
  // 3 prevs x 2 nexts pairs at most.
  EXPECT_LE(e.cached_events(),
            static_cast<std::size_t>(6 * GetParam().n_quad));
}

TEST_P(HoefPropertyTest, FootprintWeightsArePositiveAndSorted) {
  auto e = make_estimator();
  const sim::Time t0 = last_event_time_ + 1.0;
  for (geom::CellId prev : kPrevs) {
    for (const auto& p : e.footprint(t0, prev)) {
      EXPECT_GT(p.weight, 0.0);
      EXPECT_GE(p.sojourn, 0.0);
      EXPECT_EQ(p.window, 0);  // infinite T_int -> single window
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomHistories, HoefPropertyTest,
    ::testing::Values(HistoryParams{1, 50, 100}, HistoryParams{2, 500, 100},
                      HistoryParams{3, 500, 10}, HistoryParams{4, 2000, 100},
                      HistoryParams{5, 2000, 25}, HistoryParams{6, 10, 3},
                      HistoryParams{7, 1000, 1}));

}  // namespace
}  // namespace pabr::hoef
