// Regression tests for the hardened Bayes posterior: p_h must be a
// finite value in [0, 1] even when the estimation function's posterior
// denominator has zero (or poisoned) mass — an empty calendar window,
// all-stale quadruplets beyond the extant sojourn, or degenerate window
// weights. Before the shared posterior() helper, a NaN weight sum slid
// past the `denom <= 0` guard (NaN compares false) and std::clamp passed
// the NaN straight into the B_r term sums.
#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "hoef/calendar.h"
#include "hoef/estimator.h"
#include "util/check.h"

namespace pabr::hoef {
namespace {

constexpr geom::CellId kSelf = 0;
constexpr geom::CellId kPrev = 1;
constexpr geom::CellId kNext = 2;

EstimatorConfig infinite_window() {
  EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  return cfg;
}

void expect_finite_unit(double p) {
  EXPECT_TRUE(std::isfinite(p));
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
}

TEST(ZeroMassTest, EmptyCalendarWindowYieldsZeroNotNaN) {
  // Weekend quadruplet set never sees an event; querying on a Saturday
  // must hit the empty set and report "estimated stationary".
  CalendarConfig cfg;
  cfg.start_day_of_week = 0;  // Monday at t = 0
  CalendarEstimator cal(kSelf, cfg);
  cal.record({60.0, kPrev, kNext, 30.0});  // Monday event, weekday set
  const sim::Time saturday = 5.0 * sim::kDay + 100.0;
  ASSERT_TRUE(cal.is_weekend(saturday));
  const double p =
      cal.handoff_probability(saturday, kPrev, kNext, 0.0, 30.0);
  expect_finite_unit(p);
  EXPECT_DOUBLE_EQ(p, 0.0);
  const double p_any =
      cal.any_handoff_probability(saturday, kPrev, 0.0, 30.0);
  expect_finite_unit(p_any);
  EXPECT_DOUBLE_EQ(p_any, 0.0);
}

TEST(ZeroMassTest, AllStaleQuadrupletsYieldZeroNotNaN) {
  // With a finite T_int every recorded event ages out of the periodic
  // window; once none is selected the posterior denominator is zero mass.
  EstimatorConfig cfg;
  cfg.t_int = 10.0;
  cfg.period = 100.0;
  cfg.n_win_periods = 1;
  HandoffEstimator e(kSelf, cfg);
  e.record({5.0, kPrev, kNext, 3.0});
  // Query two periods later, far outside any window around the event.
  const sim::Time t0 = 250.0;
  expect_finite_unit(e.handoff_probability(t0, kPrev, kNext, 0.0, 10.0));
  EXPECT_DOUBLE_EQ(e.handoff_probability(t0, kPrev, kNext, 0.0, 10.0), 0.0);
  expect_finite_unit(e.any_handoff_probability(t0, kPrev, 0.0, 10.0));
}

TEST(ZeroMassTest, SurvivedPastEveryQuadrupletYieldsZero) {
  // An extant sojourn beyond every recorded sojourn leaves denom == 0:
  // the conditional is over an empty survivor set.
  HandoffEstimator e(kSelf, infinite_window());
  e.record({100.0, kPrev, kNext, 30.0});
  e.record({110.0, kPrev, kNext, 40.0});
  const double p = e.handoff_probability(200.0, kPrev, kNext, 50.0, 10.0);
  expect_finite_unit(p);
  EXPECT_DOUBLE_EQ(p, 0.0);
  const auto probe =
      e.handoff_probability_probe(200.0, kPrev, kNext, 50.0, 10.0);
  EXPECT_DOUBLE_EQ(probe.probability, 0.0);
  const auto any_probe =
      e.any_handoff_probability_probe(200.0, kPrev, 50.0, 10.0);
  EXPECT_DOUBLE_EQ(any_probe.probability, 0.0);
}

TEST(ZeroMassTest, ZeroLeadWindowWeightIsRejectedAtConstruction) {
  // A zero w_0 would zero the freshest window's mass and make the 0/0
  // posterior routine; the estimator refuses the config outright rather
  // than relying on the runtime guard.
  EstimatorConfig cfg = infinite_window();
  cfg.weights = {0.0, 0.0};
  EXPECT_THROW(HandoffEstimator(kSelf, cfg), InvariantError);
}

TEST(ZeroMassTest, SubnormalWeightsStayFiniteAndInRange) {
  // Tiny-but-positive weights pass validation yet push the prefix sums to
  // the very bottom of the double range; the posterior must stay in [0,1].
  EstimatorConfig cfg = infinite_window();
  cfg.weights = {5e-324, 5e-324};
  HandoffEstimator e(kSelf, cfg);
  e.record({100.0, kPrev, kNext, 30.0});
  e.record({110.0, kPrev, kNext, 40.0});
  expect_finite_unit(e.handoff_probability(200.0, kPrev, kNext, 0.0, 30.0));
  expect_finite_unit(e.any_handoff_probability(200.0, kPrev, 0.0, 30.0));
}

TEST(ZeroMassTest, PoisonedWeightsCannotLeakNonFinitePh) {
  // Infinite weights drive the prefix sums to inf and the denominator to
  // inf - inf = NaN; the hardened posterior pins the result at 0 instead
  // of letting NaN slip past the zero-mass guard.
  EstimatorConfig cfg = infinite_window();
  cfg.weights = {std::numeric_limits<double>::infinity(),
                 std::numeric_limits<double>::infinity()};
  HandoffEstimator e(kSelf, cfg);
  e.record({100.0, kPrev, kNext, 30.0});
  e.record({110.0, kPrev, kNext, 40.0});
  expect_finite_unit(e.handoff_probability(200.0, kPrev, kNext, 35.0, 10.0));
  expect_finite_unit(e.any_handoff_probability(200.0, kPrev, 35.0, 10.0));
  expect_finite_unit(
      e.handoff_probability_probe(200.0, kPrev, kNext, 35.0, 10.0)
          .probability);
  expect_finite_unit(
      e.any_handoff_probability_probe(200.0, kPrev, 35.0, 10.0).probability);
}

}  // namespace
}  // namespace pabr::hoef
