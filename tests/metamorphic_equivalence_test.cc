// Reduced metamorphic-equivalence sweep (DESIGN.md §14) that rides in
// ctest: a couple dozen scripted scenarios, each run once as the base
// reference and once per catalogue transform (M1 rotation, M2 mirror,
// M3 time shift, M4 BU rescale, M5 id shift, M1 x M2), with every
// transformed observation mapped back into the base frame and compared
// field by field. bench/metamorphic_driver is the hundreds-of-seeds,
// multi-threaded version of the same property.
#include <gtest/gtest.h>

#include <cstdint>

#include "audit/metamorphic/observation.h"
#include "audit/metamorphic/scripted.h"
#include "audit/metamorphic/transforms.h"

namespace pabr::audit::metamorphic {
namespace {

void check_seed(std::uint64_t seed, bool faults) {
  SCOPED_TRACE("seed=" + std::to_string(seed) +
               (faults ? " faults=on" : " faults=off"));
  const ScriptedScenario scenario = random_scripted_scenario(seed, faults);
  const Observation base = run_scripted(scenario);
  for (const Transform& t : catalogue(scenario, seed)) {
    SCOPED_TRACE(t.name);
    const Observation mapped = t.unmap(run_scripted(t.apply(scenario)));
    const auto diff = compare(base, mapped, t.tolerance);
    EXPECT_FALSE(diff.has_value()) << *diff << "\n  "
                                   << scenario.summary();
  }
}

TEST(MetamorphicEquivalence, CatalogueHoldsAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    check_seed(seed, /*faults=*/false);
  }
}

TEST(MetamorphicEquivalence, CatalogueHoldsWithScriptedOutages) {
  for (std::uint64_t seed = 100; seed <= 107; ++seed) {
    check_seed(seed, /*faults=*/true);
  }
}

TEST(MetamorphicEquivalence, RerunningTheBaseScenarioIsBitwiseStable) {
  const ScriptedScenario scenario =
      random_scripted_scenario(5, /*faults=*/true);
  const Observation a = run_scripted(scenario);
  const Observation b = run_scripted(scenario);
  // The strictest tolerance: every field bitwise.
  const auto diff = compare(a, b, Tolerance{false, false});
  EXPECT_FALSE(diff.has_value()) << *diff;
  EXPECT_EQ(digest(a), digest(b));
}

TEST(MetamorphicEquivalence, DigestSeparatesDifferentScenarios) {
  const Observation a =
      run_scripted(random_scripted_scenario(1, /*faults=*/false));
  const Observation b =
      run_scripted(random_scripted_scenario(2, /*faults=*/false));
  EXPECT_NE(digest(a), digest(b));
}

TEST(MetamorphicEquivalence, CompareReportsTheFirstMismatch) {
  Observation a;
  a.cells.resize(2);
  Observation b = a;
  b.cells[1].drops = 3;
  const auto diff = compare(a, b, Tolerance{false, false});
  ASSERT_TRUE(diff.has_value());
  EXPECT_NE(diff->find("drops"), std::string::npos) << *diff;
}

}  // namespace
}  // namespace pabr::audit::metamorphic
