// Unit tests for the metamorphic transformation catalogue in isolation
// (DESIGN.md §14): each transform is a pure scenario mapping with an
// exact algebra — mirroring is a bitwise involution, rotations compose
// modulo the ring size, time shifts and id shifts are additive, BU
// rescalings multiplicative — and the observation unmaps invert the
// cell permutations exactly. The end-to-end equivalence property (run
// both, compare) lives in metamorphic_equivalence_test.cc.
#include "audit/metamorphic/transforms.h"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>

#include "audit/metamorphic/scripted.h"

namespace pabr::audit::metamorphic {
namespace {

bool same_double(double a, double b) {
  return std::bit_cast<std::uint64_t>(a) == std::bit_cast<std::uint64_t>(b);
}

// Bitwise scenario equality over every field a transform may touch.
void expect_same_scenario(const ScriptedScenario& a,
                          const ScriptedScenario& b) {
  EXPECT_TRUE(same_double(a.config.time_origin, b.config.time_origin));
  EXPECT_TRUE(same_double(a.config.capacity_bu, b.config.capacity_bu));
  EXPECT_TRUE(same_double(a.config.static_g, b.config.static_g));
  EXPECT_EQ(a.config.video_min_bu, b.config.video_min_bu);
  EXPECT_TRUE(same_double(a.config.fault.degraded_floor_bu,
                          b.config.fault.degraded_floor_bu));
  EXPECT_EQ(a.config.wired.has_value(), b.config.wired.has_value());
  if (a.config.wired && b.config.wired) {
    EXPECT_TRUE(same_double(a.config.wired->access_capacity_bu,
                            b.config.wired->access_capacity_bu));
    EXPECT_TRUE(same_double(a.config.wired->uplink_capacity_bu,
                            b.config.wired->uplink_capacity_bu));
  }
  EXPECT_EQ(a.bu_scale, b.bu_scale);
  ASSERT_EQ(a.config.fault.outages.size(), b.config.fault.outages.size());
  for (std::size_t i = 0; i < a.config.fault.outages.size(); ++i) {
    const fault::ScriptedOutage& x = a.config.fault.outages[i];
    const fault::ScriptedOutage& y = b.config.fault.outages[i];
    EXPECT_EQ(x.kind, y.kind);
    EXPECT_EQ(x.a, y.a);
    EXPECT_EQ(x.b, y.b);
    EXPECT_TRUE(same_double(x.from, y.from));
    EXPECT_TRUE(same_double(x.until, y.until));
  }
  ASSERT_EQ(a.arrivals.size(), b.arrivals.size());
  for (std::size_t i = 0; i < a.arrivals.size(); ++i) {
    const ScriptedArrival& x = a.arrivals[i];
    const ScriptedArrival& y = b.arrivals[i];
    EXPECT_TRUE(same_double(x.at, y.at)) << "arrival " << i;
    EXPECT_EQ(x.id, y.id) << "arrival " << i;
    EXPECT_EQ(x.cell, y.cell) << "arrival " << i;
    EXPECT_TRUE(same_double(x.offset, y.offset)) << "arrival " << i;
    EXPECT_EQ(x.direction, y.direction) << "arrival " << i;
    EXPECT_TRUE(same_double(x.speed_kmh, y.speed_kmh)) << "arrival " << i;
    EXPECT_EQ(x.service, y.service) << "arrival " << i;
    EXPECT_TRUE(same_double(x.lifetime_s, y.lifetime_s)) << "arrival " << i;
  }
}

ScriptedScenario sample(std::uint64_t seed = 7, bool faults = true) {
  return random_scripted_scenario(seed, faults);
}

TEST(MetamorphicTransforms, MirrorIsAnInvolution) {
  const ScriptedScenario s = sample();
  expect_same_scenario(s, mirror_direction(mirror_direction(s)));
}

TEST(MetamorphicTransforms, MirrorFlipsCellsOffsetsAndDirections) {
  const ScriptedScenario s = sample();
  const ScriptedScenario m = mirror_direction(s);
  const int n = s.config.num_cells;
  for (std::size_t i = 0; i < s.arrivals.size(); ++i) {
    EXPECT_EQ(m.arrivals[i].cell, n - 1 - s.arrivals[i].cell);
    EXPECT_TRUE(
        same_double(m.arrivals[i].offset, 1.0 - s.arrivals[i].offset));
    EXPECT_EQ(m.arrivals[i].direction, -s.arrivals[i].direction);
    // The dyadic offset grid survives reflection: still strictly inside
    // (0, 1) with the same denominator.
    EXPECT_GT(m.arrivals[i].offset, 0.0);
    EXPECT_LT(m.arrivals[i].offset, 1.0);
  }
}

TEST(MetamorphicTransforms, RotationsComposeModuloRingSize) {
  const ScriptedScenario s = sample();
  const int n = s.config.num_cells;
  const int k = 2 % n == 0 ? 1 : 2;
  // rotate(k) then rotate(n-k) walks all the way around the ring.
  expect_same_scenario(s, rotate_cells(rotate_cells(s, k), n - k));
}

TEST(MetamorphicTransforms, TimeShiftsAreAdditive) {
  const ScriptedScenario s = sample();
  expect_same_scenario(shift_time(shift_time(s, 3.5), 10.25),
                       shift_time(s, 13.75));
}

TEST(MetamorphicTransforms, IdShiftsAreAdditive) {
  const ScriptedScenario s = sample();
  expect_same_scenario(shift_ids(shift_ids(s, 1000), 24),
                       shift_ids(s, 1024));
}

TEST(MetamorphicTransforms, RescalingsAreMultiplicative) {
  const ScriptedScenario s = sample();
  expect_same_scenario(rescale_bu(rescale_bu(s, 2), 4), rescale_bu(s, 8));
}

TEST(MetamorphicTransforms, RotateComposesWithMirror) {
  // The catalogue's composite entry applies rotate AFTER mirror; its
  // scenario must equal the step-by-step composition and differ from the
  // opposite order (the group is dihedral, not abelian) unless the
  // rotation is self-paired.
  const ScriptedScenario s = sample();
  const int n = s.config.num_cells;
  const int k = 1;
  const ScriptedScenario composed = rotate_cells(mirror_direction(s), k);
  for (std::size_t i = 0; i < s.arrivals.size(); ++i) {
    EXPECT_EQ(composed.arrivals[i].cell,
              (n - 1 - s.arrivals[i].cell + k) % n);
  }
  // mirror o rotate(k) o mirror == rotate(n-k): conjugating a rotation
  // by the reflection inverts it.
  expect_same_scenario(
      mirror_direction(rotate_cells(mirror_direction(s), k)),
      rotate_cells(s, n - k));
}

TEST(MetamorphicTransforms, UnmapRotationInvertsThePermutation) {
  const int n = 9;
  const int k = 4;
  Observation in;
  in.cells.resize(n);
  // Transformed-frame index (c + k) % n holds original cell c's data.
  for (int c = 0; c < n; ++c) {
    in.cells[static_cast<std::size_t>((c + k) % n)].bu =
        static_cast<double>(c);
  }
  const Observation out = unmap_rotation(in, k);
  for (int c = 0; c < n; ++c) {
    EXPECT_DOUBLE_EQ(out.cells[static_cast<std::size_t>(c)].bu,
                     static_cast<double>(c));
  }
}

TEST(MetamorphicTransforms, UnmapMirrorReversesCells) {
  const int n = 6;
  Observation in;
  in.cells.resize(n);
  for (int c = 0; c < n; ++c) {
    in.cells[static_cast<std::size_t>(n - 1 - c)].bu =
        static_cast<double>(c);
  }
  const Observation out = unmap_mirror(in);
  for (int c = 0; c < n; ++c) {
    EXPECT_DOUBLE_EQ(out.cells[static_cast<std::size_t>(c)].bu,
                     static_cast<double>(c));
  }
}

TEST(MetamorphicTransforms, UnmapComposition) {
  // Composite frame: mirror first, rotate second — index
  // (n-1-c+k) % n holds original cell c. The catalogue's composite
  // unmap is unmap_mirror(unmap_rotation(.)).
  const int n = 7;
  const int k = 3;
  Observation in;
  in.cells.resize(n);
  for (int c = 0; c < n; ++c) {
    in.cells[static_cast<std::size_t>((n - 1 - c + k) % n)].bu =
        static_cast<double>(c);
  }
  const Observation out = unmap_mirror(unmap_rotation(in, k));
  for (int c = 0; c < n; ++c) {
    EXPECT_DOUBLE_EQ(out.cells[static_cast<std::size_t>(c)].bu,
                     static_cast<double>(c));
  }
}

TEST(MetamorphicTransforms, UnmapRescaleDividesBandwidthFields) {
  Observation in;
  in.cells.resize(1);
  in.cells[0].br = 8.0;
  in.cells[0].bu = 16.0;
  in.cells[0].br_avg = 4.0;
  in.cells[0].bu_avg = 2.0;
  in.cells[0].pcb = 0.25;  // dimensionless: untouched
  in.br_avg = 4.0;
  in.bu_avg = 2.0;
  in.n_calc = 3.0;  // dimensionless: untouched
  const Observation out = unmap_rescale(in, 4);
  EXPECT_DOUBLE_EQ(out.cells[0].br, 2.0);
  EXPECT_DOUBLE_EQ(out.cells[0].bu, 4.0);
  EXPECT_DOUBLE_EQ(out.cells[0].br_avg, 1.0);
  EXPECT_DOUBLE_EQ(out.cells[0].bu_avg, 0.5);
  EXPECT_DOUBLE_EQ(out.cells[0].pcb, 0.25);
  EXPECT_DOUBLE_EQ(out.br_avg, 1.0);
  EXPECT_DOUBLE_EQ(out.bu_avg, 0.5);
  EXPECT_DOUBLE_EQ(out.n_calc, 3.0);
}

TEST(MetamorphicTransforms, RescaleScalesEveryBuDimensionedConfigField) {
  ScriptedScenario s = sample();
  s.config.wired = wired::BackboneConfig{40.0, 160.0};
  const ScriptedScenario r = rescale_bu(s, 2);
  EXPECT_EQ(r.bu_scale, 2 * s.bu_scale);
  EXPECT_DOUBLE_EQ(r.config.capacity_bu, 2.0 * s.config.capacity_bu);
  EXPECT_EQ(r.config.video_min_bu, 2 * s.config.video_min_bu);
  EXPECT_DOUBLE_EQ(r.config.static_g, 2.0 * s.config.static_g);
  EXPECT_DOUBLE_EQ(r.config.fault.degraded_floor_bu,
                   2.0 * s.config.fault.degraded_floor_bu);
  EXPECT_DOUBLE_EQ(r.config.wired->access_capacity_bu, 80.0);
  EXPECT_DOUBLE_EQ(r.config.wired->uplink_capacity_bu, 320.0);
}

TEST(MetamorphicTransforms, GeneratorIsDeterministic) {
  const ScriptedScenario a = random_scripted_scenario(42, true);
  const ScriptedScenario b = random_scripted_scenario(42, true);
  expect_same_scenario(a, b);
  EXPECT_EQ(a.summary(), b.summary());
}

TEST(MetamorphicTransforms, ScopedBuScaleIsThreadLocalAndRestores) {
  using traffic::ServiceClass;
  EXPECT_EQ(traffic::bandwidth_of(ServiceClass::kVoice), 1);
  {
    const traffic::ScopedBuScale scale(4);
    EXPECT_EQ(traffic::bandwidth_of(ServiceClass::kVoice), 4);
    EXPECT_EQ(traffic::bandwidth_of(ServiceClass::kVideo), 16);
    {
      const traffic::ScopedBuScale inner(2);
      EXPECT_EQ(traffic::bandwidth_of(ServiceClass::kVoice), 2);
    }
    EXPECT_EQ(traffic::bandwidth_of(ServiceClass::kVoice), 4);
  }
  EXPECT_EQ(traffic::bandwidth_of(ServiceClass::kVoice), 1);
}

}  // namespace
}  // namespace pabr::audit::metamorphic
