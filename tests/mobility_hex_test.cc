#include "mobility/hex_motion.h"

#include <gtest/gtest.h>

#include <map>

#include "util/check.h"

namespace pabr::mobility {
namespace {

class HexMotionTest : public ::testing::Test {
 protected:
  geom::HexTopology grid_{6, 6, /*wrap=*/true};
};

TEST_F(HexMotionTest, NextCellIsAlwaysAdjacent) {
  HexMotion motion(grid_, {});
  sim::Rng rng(3);
  for (geom::CellId c = 0; c < grid_.num_cells(); ++c) {
    for (int i = 0; i < 20; ++i) {
      const geom::CellId prev =
          grid_.neighbors(c)[static_cast<std::size_t>(i % 6)];
      const geom::CellId next = motion.next_cell(prev, c, rng);
      EXPECT_TRUE(grid_.adjacent(c, next));
    }
  }
}

TEST_F(HexMotionTest, HighPersistenceMostlyGoesStraight) {
  HexMotionConfig cfg;
  cfg.persistence = 0.9;
  HexMotion motion(grid_, cfg);
  sim::Rng rng(7);

  // Entering cell c from its southern neighbour: straight-through is the
  // northern neighbour.
  const geom::CellId c = grid_.cell_of(3, 2);
  const geom::CellId south =
      grid_.neighbor_in(c, geom::HexTopology::Direction::kS);
  const geom::CellId north =
      grid_.neighbor_in(c, geom::HexTopology::Direction::kN);

  int straight = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (motion.next_cell(south, c, rng) == north) ++straight;
  }
  EXPECT_NEAR(static_cast<double>(straight) / n, 0.9, 0.03);
}

TEST_F(HexMotionTest, ZeroPersistenceNeverGoesStraight) {
  HexMotionConfig cfg;
  cfg.persistence = 0.0;
  HexMotion motion(grid_, cfg);
  sim::Rng rng(7);
  const geom::CellId c = grid_.cell_of(3, 2);
  const geom::CellId south =
      grid_.neighbor_in(c, geom::HexTopology::Direction::kS);
  const geom::CellId north =
      grid_.neighbor_in(c, geom::HexTopology::Direction::kN);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_NE(motion.next_cell(south, c, rng), north);
  }
}

TEST_F(HexMotionTest, FreshConnectionUsesAllNeighbors) {
  HexMotion motion(grid_, {});
  sim::Rng rng(9);
  const geom::CellId c = grid_.cell_of(2, 2);
  std::map<geom::CellId, int> seen;
  for (int i = 0; i < 6000; ++i) {
    // prev == current encodes "connection started here".
    ++seen[motion.next_cell(c, c, rng)];
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST_F(HexMotionTest, SojournScalesInverselyWithSpeed) {
  HexMotionConfig cfg;
  cfg.jitter = 0.0;
  HexMotion motion(grid_, cfg);
  sim::Rng rng(1);
  // 1 km cell at 100 km/h: 36 s.
  EXPECT_NEAR(motion.sojourn(100.0, rng), 36.0, 1e-9);
  EXPECT_NEAR(motion.sojourn(50.0, rng), 72.0, 1e-9);
}

TEST_F(HexMotionTest, SojournJitterBounded) {
  HexMotionConfig cfg;
  cfg.jitter = 0.2;
  HexMotion motion(grid_, cfg);
  sim::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const double s = motion.sojourn(100.0, rng);
    EXPECT_GE(s, 36.0 * 0.8 - 1e-9);
    EXPECT_LE(s, 36.0 * 1.2 + 1e-9);
  }
}

TEST_F(HexMotionTest, ConfigValidation) {
  HexMotionConfig bad;
  bad.persistence = 1.5;
  EXPECT_THROW(HexMotion(grid_, bad), InvariantError);
  HexMotionConfig bad2;
  bad2.jitter = 1.0;
  EXPECT_THROW(HexMotion(grid_, bad2), InvariantError);
  HexMotionConfig bad3;
  bad3.cell_diameter_km = 0.0;
  EXPECT_THROW(HexMotion(grid_, bad3), InvariantError);
}

TEST_F(HexMotionTest, ZeroSpeedRejected) {
  HexMotion motion(grid_, {});
  sim::Rng rng(1);
  EXPECT_THROW(motion.sojourn(0.0, rng), InvariantError);
}

}  // namespace
}  // namespace pabr::mobility
