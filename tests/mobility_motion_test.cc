#include "mobility/linear_motion.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::mobility {
namespace {

Mobile make_mobile(double pos, int dir, double speed_kmh,
                   sim::Time at = 0.0) {
  Mobile m;
  m.id = 1;
  m.position_km = pos;
  m.position_at = at;
  m.direction = dir;
  m.speed_kmh = speed_kmh;
  return m;
}

TEST(LinearMotionTest, PositionAdvancesLinearly) {
  const Mobile m = make_mobile(2.0, +1, 72.0);  // 72 km/h = 0.02 km/s
  EXPECT_DOUBLE_EQ(position_at(m, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(position_at(m, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(position_at(m, 100.0), 4.0);
}

TEST(LinearMotionTest, BackwardMotion) {
  const Mobile m = make_mobile(2.0, -1, 36.0);  // 0.01 km/s
  EXPECT_DOUBLE_EQ(position_at(m, 100.0), 1.0);
}

TEST(LinearMotionTest, PositionBeforeCacheThrows) {
  const Mobile m = make_mobile(2.0, +1, 72.0, /*at=*/10.0);
  EXPECT_THROW(position_at(m, 5.0), InvariantError);
}

TEST(LinearMotionTest, NextCrossingForward) {
  geom::LinearTopology road(10, 1.0, true);
  const Mobile m = make_mobile(2.5, +1, 90.0);  // 0.025 km/s
  const auto c = next_crossing(road, m, 0.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->when, 20.0);  // 0.5 km at 0.025 km/s
  EXPECT_DOUBLE_EQ(c->boundary_km, 3.0);
  EXPECT_EQ(c->from, 2);
  EXPECT_EQ(c->to, 3);
}

TEST(LinearMotionTest, NextCrossingBackwardWrapsRing) {
  geom::LinearTopology road(10, 1.0, true);
  const Mobile m = make_mobile(0.25, -1, 90.0);
  const auto c = next_crossing(road, m, 0.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->when, 10.0);
  EXPECT_DOUBLE_EQ(c->boundary_km, 0.0);
  EXPECT_EQ(c->from, 0);
  EXPECT_EQ(c->to, 9);
}

TEST(LinearMotionTest, CrossingOffOpenRoadHasNoCell) {
  geom::LinearTopology road(10, 1.0, false);
  const Mobile m = make_mobile(9.5, +1, 90.0);
  const auto c = next_crossing(road, m, 0.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->to, geom::kNoCell);
  EXPECT_DOUBLE_EQ(c->boundary_km, 10.0);
}

TEST(LinearMotionTest, StationaryMobileNeverCrosses) {
  geom::LinearTopology road(10, 1.0, true);
  const Mobile m = make_mobile(5.5, +1, 0.0);
  EXPECT_FALSE(next_crossing(road, m, 0.0).has_value());
}

TEST(LinearMotionTest, CrossingEvaluatedAtLaterTime) {
  geom::LinearTopology road(10, 1.0, true);
  const Mobile m = make_mobile(2.0, +1, 36.0);  // 0.01 km/s
  // At t = 50 the mobile sits at 2.5; boundary 3.0 is 50 s away.
  const auto c = next_crossing(road, m, 50.0);
  ASSERT_TRUE(c.has_value());
  EXPECT_DOUBLE_EQ(c->when, 100.0);
}

TEST(LinearMotionTest, AdvanceToWrapsOnRing) {
  geom::LinearTopology road(10, 1.0, true);
  Mobile m = make_mobile(9.5, +1, 36.0);  // 0.01 km/s
  advance_to(road, m, 100.0);             // raw position 10.5 -> wrapped 0.5
  EXPECT_DOUBLE_EQ(m.position_km, 0.5);
  EXPECT_DOUBLE_EQ(m.position_at, 100.0);
}

TEST(LinearMotionTest, AdvanceOffOpenRoadThrows) {
  geom::LinearTopology road(10, 1.0, false);
  Mobile m = make_mobile(9.5, +1, 36.0);
  EXPECT_THROW(advance_to(road, m, 100.0), InvariantError);
}

TEST(LinearMotionTest, ChainedCrossingsCoverWholeRing) {
  geom::LinearTopology road(10, 1.0, true);
  Mobile m = make_mobile(0.5, +1, 100.0);
  sim::Time t = 0.0;
  geom::CellId expected_from = 0;
  for (int i = 0; i < 25; ++i) {  // 2.5 laps
    const auto c = next_crossing(road, m, t);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->from, expected_from);
    EXPECT_EQ(c->to, (expected_from + 1) % 10);
    advance_to(road, m, c->when);
    // Pin to boundary like the simulator does (numerical hygiene).
    m.position_km = c->boundary_km;
    t = c->when;
    expected_from = c->to;
  }
}

TEST(MobileTest, ExtantSojournAndHelpers) {
  Mobile m = make_mobile(1.0, +1, 90.0);
  m.cell = 3;
  m.prev_cell = 3;
  m.entered_cell_at = 10.0;
  EXPECT_TRUE(m.started_here());
  EXPECT_DOUBLE_EQ(m.extant_sojourn(25.0), 15.0);
  m.prev_cell = 2;
  EXPECT_FALSE(m.started_here());
  EXPECT_DOUBLE_EQ(m.speed_km_per_s(), 0.025);
}

TEST(MobileTest, BandwidthFollowsService) {
  Mobile m;
  m.service = traffic::ServiceClass::kVoice;
  EXPECT_EQ(m.bandwidth(), 1);
  m.service = traffic::ServiceClass::kVideo;
  EXPECT_EQ(m.bandwidth(), 4);
}

}  // namespace
}  // namespace pabr::mobility
