#include "mobility/speed_model.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::mobility {
namespace {

TEST(SpeedModelTest, UniformRangeFixedOverTime) {
  UniformSpeedModel m(80.0, 120.0);
  EXPECT_EQ(m.range(0.0), (std::pair<double, double>{80.0, 120.0}));
  EXPECT_EQ(m.range(1e6), (std::pair<double, double>{80.0, 120.0}));
}

TEST(SpeedModelTest, SampleWithinRange) {
  UniformSpeedModel m(40.0, 60.0);
  sim::Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const double s = m.sample(rng, 0.0);
    EXPECT_GE(s, 40.0);
    EXPECT_LT(s, 60.0);
  }
}

TEST(SpeedModelTest, PresetsMatchPaper) {
  auto high = high_mobility();
  auto low = low_mobility();
  EXPECT_EQ(high->range(0.0), (std::pair<double, double>{80.0, 120.0}));
  EXPECT_EQ(low->range(0.0), (std::pair<double, double>{40.0, 60.0}));
}

TEST(SpeedModelTest, UniformValidation) {
  EXPECT_THROW(UniformSpeedModel(0.0, 10.0), InvariantError);
  EXPECT_THROW(UniformSpeedModel(50.0, 40.0), InvariantError);
}

TEST(SpeedModelTest, ProfileModelTracksDailyCurve) {
  traffic::DailyProfile profile({{0.0, 100.0}, {9.0, 40.0}, {18.0, 100.0}});
  ProfileSpeedModel m(profile, 20.0);
  const auto midnight = m.range(0.0);
  EXPECT_DOUBLE_EQ(midnight.first, 80.0);
  EXPECT_DOUBLE_EQ(midnight.second, 120.0);
  const auto rush = m.range(9.0 * sim::kHour);
  EXPECT_DOUBLE_EQ(rush.first, 20.0);
  EXPECT_DOUBLE_EQ(rush.second, 60.0);
}

TEST(SpeedModelTest, ProfileModelFloorsAtPositiveSpeed) {
  traffic::DailyProfile slow({{0.0, 5.0}});
  ProfileSpeedModel m(slow, 20.0);
  const auto r = m.range(0.0);
  EXPECT_GE(r.first, 1.0);
  EXPECT_GE(r.second, r.first);
}

}  // namespace
}  // namespace pabr::mobility
