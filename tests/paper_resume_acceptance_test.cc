// Acceptance pin for invariant I10 on the two paper experiments the
// issue names: a Table 2 run (L = 300, R_vo = 1, high mobility, no
// warm-up reset, per-cell end state) and a Fig. 13 run (warm-up +
// metrics reset + measure flow driven directly on the system) must
// finish bitwise-identically when checkpointed and resumed mid-run.
// Lengths are reduced from the bench defaults; the configs are the
// benches' own.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <sstream>
#include <string>

#include "audit/differential.h"
#include "core/experiment.h"
#include "core/scenario.h"
#include "core/system.h"

namespace pabr::core {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

// bench/table2_cell_status.cc's configuration, verbatim.
SystemConfig table2_config(admission::PolicyKind kind) {
  StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 1.0;
  p.mobility = Mobility::kHigh;
  p.policy = kind;
  p.seed = 1;
  return stationary_config(p);
}

RunPlan table2_plan() {
  RunPlan plan;  // the paper reports cumulative values: no reset
  plan.warmup_s = 0.0;
  plan.measure_s = 1500.0;
  plan.reset_after_warmup = false;
  return plan;
}

TEST(PaperResumeAcceptanceTest, Table2RunsResumeBitwise) {
  for (const auto kind :
       {admission::PolicyKind::kAc1, admission::PolicyKind::kAc3}) {
    const SystemConfig cfg = table2_config(kind);
    const RunResult straight = run_system(cfg, table2_plan());

    const std::string path =
        temp_path(std::string("table2_ckpt_") + policy_kind_name(kind));
    RunPlan ckpt = table2_plan();
    ckpt.checkpoint_every_s = 600.0;  // fires at 600 and 1200 < 1500
    ckpt.checkpoint_path = path;
    ASSERT_EQ(run_system(cfg, ckpt).digest, straight.digest)
        << policy_kind_name(kind);

    RunPlan resume = table2_plan();
    resume.resume_from = path;
    const RunResult resumed = run_system(SystemConfig{}, resume);
    EXPECT_EQ(resumed.digest, straight.digest) << policy_kind_name(kind);
    EXPECT_EQ(resumed.events, straight.events);
    // Table 2 is a PER-CELL table: the per-cell end state must agree
    // too, not just the digest.
    ASSERT_EQ(resumed.cells.size(), straight.cells.size());
    for (std::size_t i = 0; i < straight.cells.size(); ++i) {
      EXPECT_EQ(resumed.cells[i].pcb, straight.cells[i].pcb) << i;
      EXPECT_EQ(resumed.cells[i].phd, straight.cells[i].phd) << i;
      EXPECT_EQ(resumed.cells[i].br, straight.cells[i].br) << i;
      EXPECT_EQ(resumed.cells[i].t_est, straight.cells[i].t_est) << i;
    }
    std::remove(path.c_str());
  }
}

// bench/fig13_ncalc_complexity.cc drives the system directly:
// run_for(warmup), reset_metrics(), run_for(measure). Snapshot in the
// middle of the measure phase and finish both twins.
TEST(PaperResumeAcceptanceTest, Fig13FlowResumesBitwise) {
  StationaryParams p;
  p.offered_load = 200.0;
  p.voice_ratio = 1.0;
  p.mobility = Mobility::kHigh;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = 1;
  const SystemConfig cfg = stationary_config(p);
  const double warmup = 400.0;
  const double end = 1400.0;

  CellularSystem straight(cfg);
  straight.run_until(warmup);
  straight.reset_metrics();
  straight.run_until(end);
  const std::uint64_t expected = audit::trajectory_digest(straight);
  const double n_calc = straight.system_status().n_calc;

  CellularSystem sys(cfg);
  sys.run_until(warmup);
  sys.reset_metrics();
  sys.run_until(900.0);  // mid-measure
  std::stringstream buffer(std::ios::in | std::ios::out | std::ios::binary);
  sys.save(buffer);
  const auto resumed = CellularSystem::load(buffer);
  resumed->run_until(end);
  resumed->audit_invariants();
  EXPECT_EQ(audit::trajectory_digest(*resumed), expected);
  // Fig. 13's reported quantity survives the round-trip exactly.
  EXPECT_EQ(resumed->system_status().n_calc, n_calc);
}

}  // namespace
}  // namespace pabr::core
