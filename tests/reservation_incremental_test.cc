// Randomized equivalence: the incremental reservation engine must agree
// with the from-scratch rescan (scratch_reservation) on every cell after
// thousands of mixed events — arrivals, expiries, hand-offs, drops,
// adaptive-QoS degrades, soft hand-off legs, known-route mobiles — on
// both the 1-D road and the hexagonal grid.
//
// The engine is designed to be bitwise-exact (reservation/engine.h), but
// the contract asserted here is the documented 1e-9 tolerance.
#include <gtest/gtest.h>

#include "core/hex_system.h"
#include "core/scenario.h"
#include "core/system.h"

namespace pabr {
namespace {

/// Runs `sys` in chunks, comparing the cached fast path against the
/// reference rescan on every cell after each chunk.
template <typename System>
void expect_equivalence(System& sys, int num_cells, int chunks,
                        sim::Duration chunk_s) {
  for (int k = 0; k < chunks; ++k) {
    sys.run_for(chunk_s);
    for (geom::CellId c = 0; c < num_cells; ++c) {
      const double fast = sys.recompute_reservation(c);
      const double reference = sys.scratch_reservation(c);
      EXPECT_NEAR(fast, reference, 1e-9)
          << "cell " << c << " at t = " << sys.now() << " (chunk " << k
          << ")";
    }
  }
}

core::SystemConfig loaded_config(std::uint64_t seed) {
  core::StationaryParams p;
  p.offered_load = 300.0;
  p.voice_ratio = 1.0;
  p.mobility = core::Mobility::kHigh;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = seed;
  return core::stationary_config(p);
}

TEST(ReservationIncrementalTest, MatchesScratchUnderHighLoadAc3) {
  core::CellularSystem sys(loaded_config(7));
  expect_equivalence(sys, sys.config().num_cells, 25, 40.0);
  // "Thousands of mixed events" is literal, not aspirational.
  EXPECT_GT(sys.events_executed(), 5000u);
}

TEST(ReservationIncrementalTest, MatchesScratchUnderAc2) {
  core::SystemConfig cfg = loaded_config(11);
  cfg.policy = admission::PolicyKind::kAc2;
  core::CellularSystem sys(cfg);
  expect_equivalence(sys, cfg.num_cells, 15, 40.0);
}

TEST(ReservationIncrementalTest, MatchesScratchWithAdaptiveQosVideoMix) {
  core::StationaryParams p;
  p.offered_load = 260.0;
  p.voice_ratio = 0.5;  // half video: degrades/upgrades exercise reassign
  p.seed = 13;
  core::SystemConfig cfg = core::stationary_config(p);
  cfg.adaptive_qos = true;
  core::CellularSystem sys(cfg);
  expect_equivalence(sys, cfg.num_cells, 15, 40.0);
}

TEST(ReservationIncrementalTest, MatchesScratchWithKnownRoutes) {
  core::SystemConfig cfg = loaded_config(17);
  cfg.known_route_fraction = 0.5;  // §7 ITS/GPS extension terms
  core::CellularSystem sys(cfg);
  expect_equivalence(sys, cfg.num_cells, 15, 40.0);
}

TEST(ReservationIncrementalTest, MatchesScratchWithSoftHandoff) {
  core::SystemConfig cfg = loaded_config(19);
  cfg.soft_handoff_zone_km = 0.2;  // dual legs + view promotion
  cfg.soft_capacity_margin = 0.05;
  core::CellularSystem sys(cfg);
  expect_equivalence(sys, cfg.num_cells, 15, 40.0);
}

TEST(ReservationIncrementalTest, EngineOffModeAlsoMatchesScratch) {
  core::SystemConfig cfg = loaded_config(23);
  cfg.incremental_reservation = false;
  core::CellularSystem sys(cfg);
  expect_equivalence(sys, cfg.num_cells, 5, 40.0);
}

TEST(ReservationIncrementalTest, HexGridMatchesScratch) {
  core::HexSystemConfig cfg;
  cfg.policy = admission::PolicyKind::kAc3;
  cfg.set_offered_load(260.0);
  cfg.seed = 29;
  core::HexCellularSystem sys(cfg);
  expect_equivalence(sys, cfg.rows * cfg.cols, 15, 40.0);
}

TEST(ReservationIncrementalTest, HexGridAc2MatchesScratch) {
  core::HexSystemConfig cfg;
  cfg.policy = admission::PolicyKind::kAc2;
  cfg.set_offered_load(200.0);
  cfg.seed = 31;
  core::HexCellularSystem sys(cfg);
  expect_equivalence(sys, cfg.rows * cfg.cols, 10, 40.0);
}

}  // namespace
}  // namespace pabr
