#include "reservation/reservation.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::reservation {
namespace {

// Cell 1's estimator observing departures into cell 0 (target) and cell 2.
constexpr geom::CellId kOwner = 1;
constexpr geom::CellId kTarget = 0;
constexpr geom::CellId kOther = 2;

hoef::HandoffEstimator seeded_estimator() {
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  hoef::HandoffEstimator e(kOwner, cfg);
  // From prev = 0 (came from target side): half continue to 2, half turn
  // back to 0, all with sojourn 30.
  e.record({10.0, kTarget, kOther, 30.0});
  e.record({11.0, kTarget, kTarget, 30.0});
  // Started-here mobiles (prev == owner): always exit to target after 50 s.
  e.record({12.0, kOwner, kTarget, 50.0});
  return e;
}

TEST(ReservationTest, EmptyConnectionListReservesNothing) {
  auto e = seeded_estimator();
  EXPECT_DOUBLE_EQ(
      expected_handin_bandwidth(e, {}, kTarget, 100.0, 60.0), 0.0);
}

TEST(ReservationTest, Eq5SumsBandwidthTimesProbability) {
  auto e = seeded_estimator();
  std::vector<ActiveConnectionView> conns;
  // A 4-BU video mobile that came from the target side, extant 0: within
  // 60 s it hands off with p = 1; p(next = target) = 1/2.
  conns.push_back({kTarget, 0.0, 4});
  // A 1-BU started-here mobile, extant 0: p(target within 60) = 1.
  conns.push_back({kOwner, 0.0, 1});
  const double br =
      expected_handin_bandwidth(e, conns, kTarget, 100.0, 60.0);
  EXPECT_NEAR(br, 4.0 * 0.5 + 1.0 * 1.0, 1e-12);
}

TEST(ReservationTest, ShortWindowShrinksReservation) {
  auto e = seeded_estimator();
  std::vector<ActiveConnectionView> conns{{kTarget, 0.0, 4}};
  // T_est = 20 s < sojourn 30 s: nothing expected yet.
  EXPECT_DOUBLE_EQ(
      expected_handin_bandwidth(e, conns, kTarget, 100.0, 20.0), 0.0);
  // T_est = 30 s reaches the observed sojourns.
  EXPECT_NEAR(expected_handin_bandwidth(e, conns, kTarget, 100.0, 30.0),
              2.0, 1e-12);
}

TEST(ReservationTest, ExtantSojournConditionsTheEstimate) {
  auto e = seeded_estimator();
  // Mobile from target side, extant 40 s: both prev=target events (sojourn
  // 30) are outlasted -> estimated stationary.
  std::vector<ActiveConnectionView> stale{{kTarget, 40.0, 4}};
  EXPECT_DOUBLE_EQ(
      expected_handin_bandwidth(e, stale, kTarget, 100.0, 60.0), 0.0);
  // Started-here mobile with extant 40 is still expected (sojourn 50).
  std::vector<ActiveConnectionView> alive{{kOwner, 40.0, 1}};
  EXPECT_NEAR(expected_handin_bandwidth(e, alive, kTarget, 100.0, 60.0),
              1.0, 1e-12);
}

TEST(ReservationTest, TargetCellMatters) {
  auto e = seeded_estimator();
  std::vector<ActiveConnectionView> conns{{kTarget, 0.0, 2}};
  const double to_target =
      expected_handin_bandwidth(e, conns, kTarget, 100.0, 60.0);
  const double to_other =
      expected_handin_bandwidth(e, conns, kOther, 100.0, 60.0);
  EXPECT_NEAR(to_target, 1.0, 1e-12);  // 2 BU * 1/2
  EXPECT_NEAR(to_other, 1.0, 1e-12);   // 2 BU * 1/2
}

TEST(ReservationTest, NegativeWindowRejected) {
  auto e = seeded_estimator();
  EXPECT_THROW(expected_handin_bandwidth(e, {}, kTarget, 100.0, -1.0),
               InvariantError);
}

}  // namespace
}  // namespace pabr::reservation
