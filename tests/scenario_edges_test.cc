// Parameter-edge scenarios (ISSUE satellite of the guided-fuzz PR):
// configurations at the rim of the generator's ranges must produce
// clean, audit-passing runs — zero-arrival (silent) systems, the
// single-cell ring that hands off onto itself, and fault windows that
// lie wholly outside the run horizon.
#include <gtest/gtest.h>

#include "audit/differential.h"
#include "core/system.h"
#include "fault/fault.h"
#include "fuzz/genome.h"
#include "fuzz/runner.h"

namespace pabr {
namespace {

TEST(ScenarioEdgeTest, ZeroArrivalRateStaysSilentAndClean) {
  core::SystemConfig cfg;
  cfg.num_cells = 4;
  cfg.ring = true;
  cfg.workload.arrival_rate_per_cell = 0.0;
  core::CellularSystem sys(cfg);
  sys.run_for(200.0);
  EXPECT_NO_THROW(sys.audit_invariants());
  const core::SystemStatus s = sys.system_status();
  EXPECT_EQ(s.requests, 0u);
  EXPECT_EQ(s.handoffs, 0u);
  EXPECT_EQ(sys.active_connections(), 0u);
}

TEST(ScenarioEdgeTest, SingleCellRingWrapsWithoutHandoffAccounting) {
  core::SystemConfig cfg;
  cfg.num_cells = 1;
  cfg.ring = true;
  cfg.capacity_bu = 20.0;
  cfg.workload.arrival_rate_per_cell = 0.8;
  core::CellularSystem sys(cfg);
  sys.run_for(150.0);
  EXPECT_NO_THROW(sys.audit_invariants());
  const core::SystemStatus s = sys.system_status();
  EXPECT_GT(s.requests, 0u);
  // Wrapping onto yourself is motion, not a hand-off: nothing to drop,
  // nothing for the estimator to record.
  EXPECT_EQ(s.handoffs, 0u);
  EXPECT_EQ(s.drops, 0u);
}

TEST(ScenarioEdgeTest, SingleCellRingWithSoftHandoffZoneIsSafe) {
  // The §7 zone-entry pre-allocation must not double-attach the only
  // cell when the "next" cell is the current one.
  core::SystemConfig cfg;
  cfg.num_cells = 1;
  cfg.ring = true;
  cfg.capacity_bu = 20.0;
  cfg.soft_handoff_zone_km = 0.3;
  cfg.workload.arrival_rate_per_cell = 1.0;
  core::CellularSystem sys(cfg);
  sys.run_for(150.0);
  EXPECT_NO_THROW(sys.audit_invariants());
  const core::SystemStatus s = sys.system_status();
  EXPECT_EQ(s.soft_allocations, 0u);
  EXPECT_EQ(s.soft_fallbacks, 0u);
}

TEST(ScenarioEdgeTest, SingleCellOpenRoadTerminatesOffRoad) {
  core::SystemConfig cfg;
  cfg.num_cells = 1;
  cfg.ring = false;
  cfg.workload.arrival_rate_per_cell = 0.8;
  core::CellularSystem sys(cfg);
  sys.run_for(150.0);
  EXPECT_NO_THROW(sys.audit_invariants());
  EXPECT_EQ(sys.system_status().handoffs, 0u);
}

TEST(ScenarioEdgeTest, SingleCellRingSurvivesAllOracles) {
  // Differential + resume digests on the self-wrapping topology.
  fuzz::Genome g;
  g.hex = false;
  g.cells = 1;
  g.ring = true;
  g.duration = 100.0;
  g.sim_seed = 42;
  g.arrival_rate_per_cell = 0.8;
  g.soft_handoff_zone_km = 0.2;
  g.snap_fractions = {0.5};
  g.canonicalize();
  ASSERT_EQ(g.cells, 1);
  const fuzz::OracleResult r = fuzz::run_oracles(g, /*audit_every=*/8);
  EXPECT_TRUE(r.ok) << "[" << r.stage << "] " << r.violation;
}

TEST(ScenarioEdgeTest, FaultWindowOutsideHorizonIsInert) {
#ifndef PABR_FAULT_ENABLED
  GTEST_SKIP() << "fault-injection hooks compiled out";
#else
  // Baseline: fault layer armed but with an empty script. Comparing
  // fault-on vs fault-on isolates the scripted window itself — arming
  // the layer legitimately reroutes signalling even when nothing fails.
  fuzz::Genome g = fuzz::random_genome(5, false);
  g.hex = false;
  g.duration = 60.0;
  g.faults = true;
  g.outages.clear();
  g.message_loss = 0.0;
  g.message_delay = 0.0;
  g.link_mtbf_s = 0.0;
  g.station_mtbf_s = 0.0;
  g.canonicalize();
  const fuzz::OracleResult base = fuzz::run_oracles(g, /*audit_every=*/8);
  ASSERT_TRUE(base.ok) << base.violation;

  fuzz::Genome faulty = g;
  fuzz::OutageGene o;
  o.station = false;
  o.a = 0;
  o.b = 1;
  o.from = faulty.duration * 1.5;
  o.until = faulty.duration * 1.6;
  faulty.outages.push_back(o);
  faulty.canonicalize();
  ASSERT_EQ(faulty.outages.size(), 1u);
  const fuzz::OracleResult r = fuzz::run_oracles(faulty, /*audit_every=*/8);
  EXPECT_TRUE(r.ok) << "[" << r.stage << "] " << r.violation;
  // A schedule wholly past the horizon must not perturb the trajectory:
  // loss/delay/MTBF processes are off in both genomes, so the digests
  // must agree bitwise with the empty-script run.
  EXPECT_EQ(r.incremental, base.incremental);
#endif
}

TEST(ScenarioEdgeTest, ScriptedOutageInsideHorizonDoesPerturb) {
#ifndef PABR_FAULT_ENABLED
  GTEST_SKIP() << "fault-injection hooks compiled out";
#else
  // Control for the inert-window test: the same outage moved into the
  // horizon must actually bite (otherwise the inert check proves nothing).
  fuzz::Genome g = fuzz::random_genome(5, false);
  g.hex = false;
  g.duration = 60.0;
  g.arrival_rate_per_cell = std::max(g.arrival_rate_per_cell, 0.8);
  g.faults = true;
  g.outages.clear();
  g.message_loss = 0.0;
  g.message_delay = 0.0;
  g.link_mtbf_s = 0.0;
  g.station_mtbf_s = 0.0;
  g.canonicalize();
  const fuzz::OracleResult base = fuzz::run_oracles(g, /*audit_every=*/8);
  ASSERT_TRUE(base.ok) << base.violation;

  fuzz::Genome faulty = g;
  fuzz::OutageGene o;
  o.station = true;
  o.a = 0;
  o.b = 0;
  o.from = 5.0;
  o.until = 55.0;
  faulty.outages.push_back(o);
  faulty.canonicalize();
  const fuzz::OracleResult r = fuzz::run_oracles(faulty, /*audit_every=*/8);
  EXPECT_TRUE(r.ok) << "[" << r.stage << "] " << r.violation;
  EXPECT_NE(r.incremental, base.incremental);
#endif
}

}  // namespace
}  // namespace pabr
