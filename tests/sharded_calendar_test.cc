// The sharded executor's self-contained event calendar: composite-key
// total order, insertion-order independence.
#include "sim/sharded/calendar.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace pabr::sim::sharded {
namespace {

PendingEvent make(sim::Time t, EventKind kind, geom::CellId cell,
                  traffic::ConnectionId id) {
  PendingEvent e;
  e.time = t;
  e.kind = kind;
  e.cell = cell;
  e.id = id;
  return e;
}

TEST(ShardedCalendarTest, PopsInTimeOrder) {
  EventCalendar cal;
  cal.push(make(3.0, EventKind::kExpiry, 0, 1));
  cal.push(make(1.0, EventKind::kExpiry, 0, 2));
  cal.push(make(2.0, EventKind::kExpiry, 0, 3));
  EXPECT_EQ(cal.pop().time, 1.0);
  EXPECT_EQ(cal.pop().time, 2.0);
  EXPECT_EQ(cal.pop().time, 3.0);
  EXPECT_TRUE(cal.empty());
}

TEST(ShardedCalendarTest, EqualTimesBreakByKindThenCellThenId) {
  EventCalendar cal;
  cal.push(make(1.0, EventKind::kExpiry, 0, 1));
  cal.push(make(1.0, EventKind::kArrive, 9, 7));
  cal.push(make(1.0, EventKind::kDepart, 3, 7));
  cal.push(make(1.0, EventKind::kArrive, 2, 9));
  cal.push(make(1.0, EventKind::kArrive, 2, 4));

  EXPECT_EQ(cal.pop().kind, EventKind::kDepart);
  PendingEvent e = cal.pop();
  EXPECT_EQ(e.kind, EventKind::kArrive);
  EXPECT_EQ(e.cell, 2);
  EXPECT_EQ(e.id, 4u);
  e = cal.pop();
  EXPECT_EQ(e.cell, 2);
  EXPECT_EQ(e.id, 9u);
  EXPECT_EQ(cal.pop().cell, 9);
  EXPECT_EQ(cal.pop().kind, EventKind::kExpiry);
}

TEST(ShardedCalendarTest, PopSequenceIsInsertionOrderInvariant) {
  // The composite key is a total order over distinct events, so any
  // permutation of pushes must yield the same pop sequence — the property
  // that makes barrier-time cross-shard drains deterministic.
  std::vector<PendingEvent> events;
  for (int i = 0; i < 64; ++i) {
    events.push_back(make(static_cast<sim::Time>(i % 8),
                          static_cast<EventKind>(i % 4),
                          static_cast<geom::CellId>(i % 5),
                          static_cast<traffic::ConnectionId>(i)));
  }

  auto drain = [](EventCalendar& cal) {
    std::vector<traffic::ConnectionId> ids;
    while (!cal.empty()) ids.push_back(cal.pop().id);
    return ids;
  };

  EventCalendar forward;
  for (const auto& e : events) forward.push(e);
  const auto reference = drain(forward);

  std::mt19937 shuffler(7);
  for (int round = 0; round < 10; ++round) {
    std::shuffle(events.begin(), events.end(), shuffler);
    EventCalendar cal;
    for (const auto& e : events) cal.push(e);
    EXPECT_EQ(drain(cal), reference);
  }
}

TEST(ShardedCalendarTest, PoppedSequenceIsSortedUnderEventBefore) {
  EventCalendar cal;
  std::mt19937 gen(11);
  std::uniform_real_distribution<double> time(0.0, 10.0);
  for (traffic::ConnectionId i = 0; i < 200; ++i) {
    cal.push(make(time(gen), static_cast<EventKind>(i % 4),
                  static_cast<geom::CellId>(i % 7), i));
  }
  PendingEvent prev = cal.pop();
  while (!cal.empty()) {
    const PendingEvent next = cal.pop();
    EXPECT_TRUE(event_before(prev, next));
    prev = next;
  }
}

}  // namespace
}  // namespace pabr::sim::sharded
