// The sharded executor's core contract: results are BITWISE identical
// for every shard count. Each case runs the same configuration at
// shards = 1, 2, 4 (and more) and compares the end-state digests plus
// every aggregate metric field.
#include <gtest/gtest.h>

#include <vector>

#include "sim/sharded/executor.h"

namespace pabr::sim::sharded {
namespace {

ShardedConfig base_config() {
  ShardedConfig cfg;
  cfg.system.rows = 4;
  cfg.system.cols = 6;
  cfg.system.wrap = true;
  cfg.system.policy = admission::PolicyKind::kAc2;
  cfg.system.arrival_rate_per_cell = 0.5;
  cfg.system.seed = 11;
  cfg.duration_s = 200.0;
  return cfg;
}

ShardedResult run_with(ShardedConfig cfg, int shards) {
  cfg.shards = shards;
  ShardedExecutor exec(cfg);
  return exec.run();
}

void expect_identical(const ShardedResult& a, const ShardedResult& b) {
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.active_connections, b.active_connections);
  EXPECT_EQ(a.status.requests, b.status.requests);
  EXPECT_EQ(a.status.blocks, b.status.blocks);
  EXPECT_EQ(a.status.handoffs, b.status.handoffs);
  EXPECT_EQ(a.status.drops, b.status.drops);
  // Doubles compared bitwise-exactly on purpose: shard merges are
  // required to preserve the association order of every float sum.
  EXPECT_EQ(a.status.pcb, b.status.pcb);
  EXPECT_EQ(a.status.phd, b.status.phd);
  EXPECT_EQ(a.status.n_calc, b.status.n_calc);
  EXPECT_EQ(a.status.br_avg, b.status.br_avg);
  EXPECT_EQ(a.status.bu_avg, b.status.bu_avg);
  EXPECT_EQ(a.status.br_calculations, b.status.br_calculations);
  ASSERT_EQ(a.cells.size(), b.cells.size());
  for (std::size_t i = 0; i < a.cells.size(); ++i) {
    EXPECT_EQ(a.cells[i].br, b.cells[i].br);
    EXPECT_EQ(a.cells[i].bu, b.cells[i].bu);
    EXPECT_EQ(a.cells[i].t_est, b.cells[i].t_est);
    EXPECT_EQ(a.cells[i].br_avg, b.cells[i].br_avg);
    EXPECT_EQ(a.cells[i].bu_avg, b.cells[i].bu_avg);
  }
}

void expect_shard_invariant(const ShardedConfig& cfg) {
  const ShardedResult one = run_with(cfg, 1);
  ASSERT_GT(one.events, 0u);
  for (const int shards : {2, 3, 4}) {
    const ShardedResult many = run_with(cfg, shards);
    expect_identical(one, many);
  }
}

TEST(ShardEquivalenceTest, Ac2DefaultConfiguration) {
  expect_shard_invariant(base_config());
}

TEST(ShardEquivalenceTest, EveryAdmissionPolicy) {
  for (const auto kind :
       {admission::PolicyKind::kAc1, admission::PolicyKind::kAc3,
        admission::PolicyKind::kNsDca, admission::PolicyKind::kStatic}) {
    ShardedConfig cfg = base_config();
    cfg.system.policy = kind;
    expect_shard_invariant(cfg);
  }
}

TEST(ShardEquivalenceTest, AcrossSeeds) {
  for (const std::uint64_t seed : {2u, 3u}) {
    ShardedConfig cfg = base_config();
    cfg.system.seed = seed;
    expect_shard_invariant(cfg);
  }
}

TEST(ShardEquivalenceTest, WithWarmupReset) {
  ShardedConfig cfg = base_config();
  cfg.warmup_s = 48.0;
  expect_shard_invariant(cfg);
}

TEST(ShardEquivalenceTest, WithSlotOverride) {
  ShardedConfig cfg = base_config();
  cfg.slot_override_s = 8.0;  // 3 barriers per derived slot
  expect_shard_invariant(cfg);
}

TEST(ShardEquivalenceTest, RescanEngineMatchesToo) {
  ShardedConfig cfg = base_config();
  cfg.system.incremental_reservation = false;
  expect_shard_invariant(cfg);
}

TEST(ShardEquivalenceTest, OneShardPerCell) {
  const ShardedConfig cfg = base_config();
  expect_identical(run_with(cfg, 1), run_with(cfg, 24));
}

#ifdef PABR_AUDIT_ENABLED
TEST(ShardEquivalenceTest, WithBarrierAudits) {
  ShardedConfig cfg = base_config();
  cfg.audit_at_barriers = true;
  expect_shard_invariant(cfg);
}
#endif

#ifdef PABR_FAULT_ENABLED
TEST(ShardEquivalenceTest, UnderFaultInjection) {
  ShardedConfig cfg = base_config();
  cfg.system.fault.enabled = true;
  cfg.system.fault.seed = 5;
  cfg.system.fault.link_mtbf_s = 300.0;
  cfg.system.fault.link_mttr_s = 40.0;
  cfg.system.fault.message_loss = 0.02;
  cfg.system.fault.station_mtbf_s = 800.0;
  cfg.system.fault.station_mttr_s = 60.0;
  cfg.audit_at_barriers = true;
  expect_shard_invariant(cfg);
}

TEST(ShardEquivalenceTest, FaultInjectionActuallyFires) {
  // Guards the case above against vacuous success: this fault schedule
  // must actually perturb the fault-free trajectory.
  ShardedConfig cfg = base_config();
  const ShardedResult clean = run_with(cfg, 2);
  cfg.system.fault.enabled = true;
  cfg.system.fault.seed = 5;
  cfg.system.fault.link_mtbf_s = 300.0;
  cfg.system.fault.link_mttr_s = 40.0;
  cfg.system.fault.message_loss = 0.02;
  cfg.system.fault.station_mtbf_s = 800.0;
  cfg.system.fault.station_mttr_s = 60.0;
  const ShardedResult faulty = run_with(cfg, 2);
  EXPECT_NE(clean.digest, faulty.digest);
}
#endif

#ifdef PABR_TELEMETRY_ENABLED
TEST(ShardEquivalenceTest, MergedTelemetryCountersAreShardInvariant) {
  ShardedConfig cfg = base_config();
  cfg.system.telemetry.enabled = true;
  cfg.system.telemetry.time_admissions = false;  // wall-clock histogram off
  const ShardedResult one = run_with(cfg, 1);
  for (const int shards : {2, 4}) {
    const ShardedResult many = run_with(cfg, shards);
    ASSERT_EQ(one.telemetry.counters.size(), many.telemetry.counters.size());
    for (std::size_t i = 0; i < one.telemetry.counters.size(); ++i) {
      EXPECT_EQ(one.telemetry.counters[i].first,
                many.telemetry.counters[i].first);
      EXPECT_EQ(one.telemetry.counters[i].second,
                many.telemetry.counters[i].second)
          << one.telemetry.counters[i].first;
    }
  }
}
#endif

}  // namespace
}  // namespace pabr::sim::sharded
