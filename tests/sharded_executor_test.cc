// Basic behaviour of the sharded executor: slot derivation, validation,
// warm-up reset, audit hook, telemetry merge consistency.
#include "sim/sharded/executor.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::sim::sharded {
namespace {

ShardedConfig small_config() {
  ShardedConfig cfg;
  cfg.system.rows = 4;
  cfg.system.cols = 6;
  cfg.system.wrap = true;
  cfg.system.policy = admission::PolicyKind::kAc2;
  cfg.system.arrival_rate_per_cell = 0.5;
  cfg.system.seed = 7;
  cfg.shards = 1;
  cfg.duration_s = 150.0;
  return cfg;
}

TEST(ShardedExecutorTest, DerivesConservativeSlotFromMobility) {
  // 3600 * 1 km / 120 km/h * (1 - 0.2) = 24 s: the fastest possible cell
  // traversal, so nothing can cross more than one cell per slot.
  ShardedExecutor exec(small_config());
  EXPECT_DOUBLE_EQ(exec.slot_length(), 24.0);
}

TEST(ShardedExecutorTest, SlotOverrideMustNotExceedLookahead) {
  ShardedConfig cfg = small_config();
  cfg.slot_override_s = 12.0;
  EXPECT_DOUBLE_EQ(ShardedExecutor(cfg).slot_length(), 12.0);
  cfg.slot_override_s = 24.5;
  EXPECT_THROW(ShardedExecutor{cfg}, InvariantError);
}

TEST(ShardedExecutorTest, SingleShardRunProducesTraffic) {
  ShardedExecutor exec(small_config());
  const ShardedResult r = exec.run();
  EXPECT_GT(r.events, 0u);
  EXPECT_GT(r.status.requests, 0u);
  EXPECT_GT(r.status.handoffs, 0u);
  EXPECT_GT(r.status.bu_avg, 0.0);
  EXPECT_NE(r.digest, 0u);
  EXPECT_EQ(r.cells.size(), 24u);
  EXPECT_EQ(r.cells.front().cell, 1);  // 1-based, as the paper numbers cells
  EXPECT_GE(r.wall_seconds, 0.0);
}

TEST(ShardedExecutorTest, ZeroArrivalRateStaysQuiet) {
  ShardedConfig cfg = small_config();
  cfg.system.arrival_rate_per_cell = 0.0;
  const ShardedResult r = ShardedExecutor(cfg).run();
  EXPECT_EQ(r.events, 0u);
  EXPECT_EQ(r.status.requests, 0u);
  EXPECT_EQ(r.active_connections, 0u);
}

TEST(ShardedExecutorTest, WarmupResetDropsEarlyTallies) {
  ShardedConfig cfg = small_config();
  const ShardedResult full = ShardedExecutor(cfg).run();
  cfg.warmup_s = 72.0;  // slot-aligned: 3 slots of 24 s
  const ShardedResult measured = ShardedExecutor(cfg).run();
  EXPECT_LT(measured.status.requests, full.status.requests);
  EXPECT_GT(measured.status.requests, 0u);
  // The trajectory itself is warm-up independent: same events either way.
  EXPECT_EQ(measured.events, full.events);
}

TEST(ShardedExecutorTest, WarmupMustLeaveMeasurementSlots) {
  ShardedConfig cfg = small_config();
  cfg.warmup_s = cfg.duration_s + 1.0;
  EXPECT_THROW(ShardedExecutor{cfg}, InvariantError);
  cfg.warmup_s = cfg.duration_s;  // reset slot would be the horizon itself
  EXPECT_THROW(ShardedExecutor{cfg}, InvariantError);
}

TEST(ShardedExecutorTest, RejectsBadShardCounts) {
  ShardedConfig cfg = small_config();
  cfg.shards = 0;
  EXPECT_THROW(ShardedExecutor{cfg}, InvariantError);
  cfg.shards = 25;  // more shards than cells
  EXPECT_THROW(ShardedExecutor{cfg}, InvariantError);
}

#ifdef PABR_AUDIT_ENABLED
TEST(ShardedExecutorTest, BarrierAuditPassesOnCleanRun) {
  ShardedConfig cfg = small_config();
  cfg.audit_at_barriers = true;
  const ShardedResult r = ShardedExecutor(cfg).run();
  EXPECT_GT(r.events, 0u);
}
#endif

#ifdef PABR_TELEMETRY_ENABLED
TEST(ShardedExecutorTest, MergedTelemetryMatchesStatusTallies) {
  ShardedConfig cfg = small_config();
  cfg.shards = 3;
  cfg.system.telemetry.enabled = true;
  cfg.system.telemetry.time_admissions = false;
  const ShardedResult r = ShardedExecutor(cfg).run();
  EXPECT_EQ(r.telemetry.counter("admission.admitted") +
                r.telemetry.counter("admission.blocked"),
            r.status.requests);
  EXPECT_EQ(r.telemetry.counter("admission.blocked"), r.status.blocks);
  EXPECT_EQ(r.telemetry.counter("handoff.completed") +
                r.telemetry.counter("handoff.dropped"),
            r.status.handoffs);
  EXPECT_EQ(r.telemetry.counter("handoff.dropped"), r.status.drops);
  EXPECT_GT(r.telemetry.counter("reservation.recomputes"), 0u);
}
#endif

}  // namespace
}  // namespace pabr::sim::sharded
