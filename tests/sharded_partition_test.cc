// Contiguous cell partition used by the sharded executor.
#include "sim/sharded/partition.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::sim::sharded {
namespace {

TEST(PartitionTest, CoversEveryCellExactlyOnce) {
  const Partition p(23, 5);
  EXPECT_EQ(p.shards(), 5);
  EXPECT_EQ(p.num_cells(), 23);
  int covered = 0;
  for (int s = 0; s < p.shards(); ++s) {
    EXPECT_EQ(p.last(s) - p.first(s), p.size(s));
    for (geom::CellId c = p.first(s); c < p.last(s); ++c) {
      EXPECT_EQ(p.owner(c), s);
      ++covered;
    }
  }
  EXPECT_EQ(covered, 23);
  EXPECT_EQ(p.first(0), 0);
  EXPECT_EQ(p.last(4), 23);
}

TEST(PartitionTest, ShardSizesDifferByAtMostOne) {
  const Partition p(23, 5);
  int lo = p.size(0);
  int hi = p.size(0);
  for (int s = 1; s < p.shards(); ++s) {
    lo = std::min(lo, p.size(s));
    hi = std::max(hi, p.size(s));
  }
  EXPECT_LE(hi - lo, 1);
}

TEST(PartitionTest, RangesAreContiguousAndOrdered) {
  const Partition p(1024, 7);
  for (int s = 1; s < p.shards(); ++s) {
    EXPECT_EQ(p.first(s), p.last(s - 1));
  }
}

TEST(PartitionTest, SingleShardOwnsEverything) {
  const Partition p(16, 1);
  for (geom::CellId c = 0; c < 16; ++c) EXPECT_EQ(p.owner(c), 0);
}

TEST(PartitionTest, OneCellPerShardIsIdentity) {
  const Partition p(6, 6);
  for (geom::CellId c = 0; c < 6; ++c) {
    EXPECT_EQ(p.owner(c), c);
    EXPECT_EQ(p.size(c), 1);
  }
}

TEST(PartitionTest, RejectsDegenerateShapes) {
  EXPECT_THROW(Partition(0, 1), InvariantError);
  EXPECT_THROW(Partition(4, 0), InvariantError);
  EXPECT_THROW(Partition(4, 5), InvariantError);
}

TEST(PartitionTest, OwnerRejectsOutOfRangeCells) {
  const Partition p(8, 2);
  EXPECT_THROW(p.owner(-1), InvariantError);
  EXPECT_THROW(p.owner(8), InvariantError);
}

}  // namespace
}  // namespace pabr::sim::sharded
