// Sharded checkpoint/resume (DESIGN.md §13): a checkpoint written at a
// barrier slot is byte-identical whatever the shard count, resuming —
// even under a DIFFERENT shard count — reproduces the uninterrupted
// run's end-state digest bitwise, and a snapshot from a different
// configuration is refused up front.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "sim/sharded/executor.h"
#include "util/check.h"

namespace pabr::sim::sharded {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  EXPECT_TRUE(is.good()) << path;
  return {std::istreambuf_iterator<char>(is),
          std::istreambuf_iterator<char>()};
}

ShardedConfig small_torus(int shards) {
  ShardedConfig cfg;
  cfg.system.rows = 6;
  cfg.system.cols = 6;
  cfg.system.wrap = true;
  cfg.system.policy = admission::PolicyKind::kAc2;
  cfg.system.arrival_rate_per_cell = 0.5;
  cfg.system.seed = 17;
  cfg.shards = shards;
  cfg.duration_s = 150.0;
  return cfg;
}

TEST(ShardedSnapshotTest, CheckpointFileIsShardCountInvariant) {
  const std::string p1 = temp_path("sharded_ckpt_1s");
  const std::string p4 = temp_path("sharded_ckpt_4s");
  for (const auto& [shards, path] : {std::pair{1, p1}, std::pair{4, p4}}) {
    ShardedConfig cfg = small_torus(shards);
    cfg.checkpoint_every_s = 50.0;
    cfg.checkpoint_path = path;
    ShardedExecutor(cfg).run();
  }
  EXPECT_EQ(slurp(p1), slurp(p4));
  std::remove(p1.c_str());
  std::remove(p4.c_str());
}

TEST(ShardedSnapshotTest, ResumeMatchesUninterruptedAcrossShardCounts) {
  const std::uint64_t straight = ShardedExecutor(small_torus(2)).run().digest;

  const std::string path = temp_path("sharded_ckpt_resume");
  {
    ShardedConfig cfg = small_torus(2);
    cfg.checkpoint_every_s = 60.0;  // snaps up to the slot grid
    cfg.checkpoint_path = path;
    EXPECT_EQ(ShardedExecutor(cfg).run().digest, straight)
        << "writing checkpoints must not perturb the trajectory";
  }
  for (const int resume_shards : {1, 2, 4}) {
    ShardedConfig cfg = small_torus(resume_shards);
    cfg.resume_from = path;
    const ShardedResult r = ShardedExecutor(cfg).run();
    EXPECT_EQ(r.digest, straight) << "resumed under " << resume_shards
                                  << " shards";
  }
  std::remove(path.c_str());
}

TEST(ShardedSnapshotTest, ResumeRejectsMismatchedConfig) {
  const std::string path = temp_path("sharded_ckpt_mismatch");
  {
    ShardedConfig cfg = small_torus(1);
    cfg.checkpoint_every_s = 60.0;
    cfg.checkpoint_path = path;
    ShardedExecutor(cfg).run();
  }
  ShardedConfig other = small_torus(1);
  other.system.arrival_rate_per_cell = 0.7;  // different config digest
  other.resume_from = path;
  EXPECT_THROW(ShardedExecutor(other).run(), InvariantError);
  std::remove(path.c_str());
}

TEST(ShardedSnapshotTest, CheckpointCadenceRequiresAPath) {
  ShardedConfig cfg = small_torus(1);
  cfg.checkpoint_every_s = 10.0;
  EXPECT_THROW(ShardedExecutor exec(cfg), InvariantError);
}

}  // namespace
}  // namespace pabr::sim::sharded
