#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace pabr::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    cb();
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule(7.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(1.0, [&] { ++fired; });
  q.schedule(2.0, [&] { fired += 10; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, 10);
}

TEST(EventQueueTest, CancelTwiceReturnsFalse) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, CancelAfterFireReturnsFalse) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.pop().second();
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, DefaultHandleIsInert) {
  EventQueue q;
  EventHandle h;
  EXPECT_FALSE(h.valid());
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, CancelledHeadSkippedByNextTime) {
  EventQueue q;
  auto h = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.cancel(h);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  auto [t, cb] = q.pop();
  EXPECT_DOUBLE_EQ(t, 2.0);
}

TEST(EventQueueTest, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  q.clear();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopOnEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), InvariantError);
  EXPECT_THROW(q.next_time(), InvariantError);
}

TEST(EventQueueTest, NullCallbackRejected) {
  EventQueue q;
  EXPECT_THROW(q.schedule(1.0, EventQueue::Callback{}), InvariantError);
}

TEST(EventQueueTest, SizeTracksCancellations) {
  EventQueue q;
  auto a = q.schedule(1.0, [] {});
  auto b = q.schedule(2.0, [] {});
  (void)b;
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ManyInterleavedOperationsStayConsistent) {
  EventQueue q;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 100; ++i) {
    handles.push_back(q.schedule(static_cast<double>(i % 10), [] {}));
  }
  for (int i = 0; i < 100; i += 3) {
    q.cancel(handles[static_cast<std::size_t>(i)]);
  }
  std::size_t popped = 0;
  double last = -1.0;
  while (!q.empty()) {
    auto [t, cb] = q.pop();
    EXPECT_GE(t, last);
    last = t;
    ++popped;
  }
  EXPECT_EQ(popped, 100u - 34u);  // 34 cancelled (i = 0,3,...,99)
}

}  // namespace
}  // namespace pabr::sim
