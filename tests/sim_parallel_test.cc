// sim/parallel.h: the deterministic fork-join helpers behind the
// --threads experiment drivers, plus the end-to-end guarantee that
// run_replicated / sweep_loads produce byte-identical results at any
// thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/experiment.h"
#include "core/scenario.h"
#include "sim/parallel.h"

namespace pabr {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 7}) {
    std::vector<std::atomic<int>> hits(97);
    sim::parallel_for(threads, hits.size(),
                      [&](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
    }
  }
}

TEST(ParallelForTest, ZeroAndSingleItemEdgeCases) {
  int calls = 0;
  sim::parallel_for(4, 0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  sim::parallel_for(4, 1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, RethrowsLowestIndexException) {
  for (int threads : {1, 4}) {
    try {
      sim::parallel_for(threads, 20, [](std::size_t i) {
        if (i == 3 || i == 17) {
          throw std::runtime_error("task " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception (threads=" << threads << ")";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "task 3");
    }
  }
}

TEST(ParallelMapTest, ResultsIndexedLikeSequential) {
  const auto seq = sim::parallel_map<int>(
      1, 50, [](std::size_t i) { return static_cast<int>(i * i); });
  const auto par = sim::parallel_map<int>(
      4, 50, [](std::size_t i) { return static_cast<int>(i * i); });
  EXPECT_EQ(seq, par);
}

TEST(ParallelTest, HardwareThreadsIsPositive) {
  EXPECT_GE(sim::hardware_threads(), 1);
}

core::RunPlan short_plan() {
  core::RunPlan plan;
  plan.warmup_s = 100.0;
  plan.measure_s = 300.0;
  return plan;
}

core::SystemConfig small_config() {
  core::StationaryParams p;
  p.offered_load = 120.0;
  p.policy = admission::PolicyKind::kAc3;
  p.seed = 5;
  return core::stationary_config(p);
}

TEST(ParallelDriverTest, RunReplicatedIsThreadCountInvariant) {
  const auto seq = core::run_replicated(small_config(), short_plan(), 4, 1);
  const auto par = core::run_replicated(small_config(), short_plan(), 4, 4);
  ASSERT_EQ(seq.runs.size(), par.runs.size());
  // Byte-identical per-seed samples, not merely close.
  EXPECT_EQ(seq.pcb.samples, par.pcb.samples);
  EXPECT_EQ(seq.phd.samples, par.phd.samples);
  EXPECT_EQ(seq.br_avg.samples, par.br_avg.samples);
  EXPECT_EQ(seq.n_calc.samples, par.n_calc.samples);
  EXPECT_EQ(seq.pcb.mean, par.pcb.mean);
  EXPECT_EQ(seq.phd.ci95, par.phd.ci95);
  for (std::size_t i = 0; i < seq.runs.size(); ++i) {
    EXPECT_EQ(seq.runs[i].events, par.runs[i].events);
    EXPECT_EQ(seq.runs[i].status.br_calculations,
              par.runs[i].status.br_calculations);
    EXPECT_EQ(seq.runs[i].status.br_avg, par.runs[i].status.br_avg);
  }
}

TEST(ParallelDriverTest, SweepLoadsIsThreadCountInvariant) {
  const std::vector<double> loads = {60.0, 140.0, 220.0};
  const auto config_for = [](double load) {
    core::StationaryParams p;
    p.offered_load = load;
    p.seed = 9;
    return core::stationary_config(p);
  };
  const auto seq = core::sweep_loads(loads, config_for, short_plan(), 1);
  const auto par = core::sweep_loads(loads, config_for, short_plan(), 3);
  ASSERT_EQ(seq.size(), par.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].offered_load, par[i].offered_load);
    EXPECT_EQ(seq[i].result.status.pcb, par[i].result.status.pcb);
    EXPECT_EQ(seq[i].result.status.phd, par[i].result.status.phd);
    EXPECT_EQ(seq[i].result.status.br_avg, par[i].result.status.br_avg);
    EXPECT_EQ(seq[i].result.events, par[i].result.events);
  }
}

}  // namespace
}  // namespace pabr
