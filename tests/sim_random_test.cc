#include "sim/random.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/check.h"

namespace pabr::sim {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, Uniform01InHalfOpenRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(80.0, 120.0);
    EXPECT_GE(u, 80.0);
    EXPECT_LT(u, 120.0);
  }
  EXPECT_THROW(r.uniform(2.0, 1.0), InvariantError);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int v = r.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng r(99);
  const double mean = 120.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
  EXPECT_THROW(r.exponential(0.0), InvariantError);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
  EXPECT_THROW(r.bernoulli(1.5), InvariantError);
  EXPECT_THROW(r.bernoulli(-0.1), InvariantError);
}

TEST(DeriveSeedTest, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(1, "workload"), derive_seed(1, "workload"));
}

TEST(DeriveSeedTest, NameSeparatesStreams) {
  EXPECT_NE(derive_seed(1, "workload"), derive_seed(1, "retry"));
}

TEST(DeriveSeedTest, SeedSeparatesStreams) {
  EXPECT_NE(derive_seed(1, "workload"), derive_seed(2, "workload"));
}

TEST(RngFactoryTest, NamedStreamsAreIndependentButReproducible) {
  RngFactory f(123);
  Rng a1 = f.make("a");
  Rng a2 = f.make("a");
  Rng b = f.make("b");
  EXPECT_DOUBLE_EQ(a1.uniform01(), a2.uniform01());
  // Streams "a" and "b" should not track each other.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a1.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 3);
}

// The workload/lifetime/speed streams must stay platform-stable: these
// golden values pin the 53-bit uniform construction.
TEST(RngTest, GoldenFirstDraws) {
  Rng r(0);
  const double u = r.uniform01();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  Rng r2(0);
  EXPECT_DOUBLE_EQ(u, r2.uniform01());
}

// Snapshot contract (DESIGN.md §13): save_state()/load_state() round-trip
// the full engine state, so the next N draws after a restore are bitwise
// identical to an uninterrupted stream — across distribution types, from
// any stream position, and into an engine at a different position.
TEST(RngTest, SaveLoadStateRoundTripsTheNextDraws) {
  Rng original(1234);
  // Advance to an arbitrary mid-stream position with mixed draw kinds.
  for (int i = 0; i < 57; ++i) {
    original.uniform01();
    original.exponential(2.0);
    original.uniform_int(0, 9);
  }
  const std::string state = original.save_state();

  Rng restored(999);       // different seed, different position...
  restored.uniform01();    // ...and some draws consumed
  restored.load_state(state);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(original.uniform01(), restored.uniform01()) << "draw " << i;
    EXPECT_EQ(original.exponential(3.5), restored.exponential(3.5));
    EXPECT_EQ(original.uniform(-2.0, 2.0), restored.uniform(-2.0, 2.0));
    EXPECT_EQ(original.uniform_int(-5, 40), restored.uniform_int(-5, 40));
    EXPECT_EQ(original.bernoulli(0.3), restored.bernoulli(0.3));
  }
  // The state is value-serialized (printable text), not a memory dump.
  EXPECT_FALSE(state.empty());
  for (const char c : state) {
    EXPECT_TRUE((c >= '0' && c <= '9') || c == ' ') << static_cast<int>(c);
  }
}

// The fault-generator stream random_scenario uses to draw fault
// schedules is an ordinary named stream: same round-trip guarantee.
TEST(RngFactoryTest, FaultGeneratorStreamRoundTrips) {
  const RngFactory factory(77);
  Rng faults = factory.make("fault-generator");
  for (int i = 0; i < 13; ++i) faults.exponential(100.0);
  const std::string state = faults.save_state();
  Rng restored = factory.make("fault-generator");
  restored.load_state(state);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(faults.exponential(100.0), restored.exponential(100.0));
    EXPECT_EQ(faults.uniform01(), restored.uniform01());
  }
}

}  // namespace
}  // namespace pabr::sim
