#include "sim/random.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace pabr::sim {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform01(), b.uniform01());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, Uniform01InHalfOpenRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform(80.0, 120.0);
    EXPECT_GE(u, 80.0);
    EXPECT_LT(u, 120.0);
  }
  EXPECT_THROW(r.uniform(2.0, 1.0), InvariantError);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int v = r.uniform_int(-2, 3);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -2);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntSingleton) {
  Rng r(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(5, 5), 5);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng r(99);
  const double mean = 120.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.exponential(mean);
  EXPECT_NEAR(sum / n, mean, mean * 0.02);
  EXPECT_THROW(r.exponential(0.0), InvariantError);
}

TEST(RngTest, ExponentialIsPositive) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(r.exponential(1.0), 0.0);
}

TEST(RngTest, BernoulliFrequencyMatches) {
  Rng r(11);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (r.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliDegenerate) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
  EXPECT_THROW(r.bernoulli(1.5), InvariantError);
  EXPECT_THROW(r.bernoulli(-0.1), InvariantError);
}

TEST(DeriveSeedTest, StableAcrossCalls) {
  EXPECT_EQ(derive_seed(1, "workload"), derive_seed(1, "workload"));
}

TEST(DeriveSeedTest, NameSeparatesStreams) {
  EXPECT_NE(derive_seed(1, "workload"), derive_seed(1, "retry"));
}

TEST(DeriveSeedTest, SeedSeparatesStreams) {
  EXPECT_NE(derive_seed(1, "workload"), derive_seed(2, "workload"));
}

TEST(RngFactoryTest, NamedStreamsAreIndependentButReproducible) {
  RngFactory f(123);
  Rng a1 = f.make("a");
  Rng a2 = f.make("a");
  Rng b = f.make("b");
  EXPECT_DOUBLE_EQ(a1.uniform01(), a2.uniform01());
  // Streams "a" and "b" should not track each other.
  int same = 0;
  for (int i = 0; i < 50; ++i) {
    if (a1.uniform01() == b.uniform01()) ++same;
  }
  EXPECT_LT(same, 3);
}

// The workload/lifetime/speed streams must stay platform-stable: these
// golden values pin the 53-bit uniform construction.
TEST(RngTest, GoldenFirstDraws) {
  Rng r(0);
  const double u = r.uniform01();
  EXPECT_GE(u, 0.0);
  EXPECT_LT(u, 1.0);
  Rng r2(0);
  EXPECT_DOUBLE_EQ(u, r2.uniform01());
}

}  // namespace
}  // namespace pabr::sim
