#include "sim/series.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::sim {
namespace {

TEST(SeriesTest, AppendsAndExposesPoints) {
  Series s("t_est");
  EXPECT_TRUE(s.empty());
  s.add(1.0, 10.0);
  s.add(2.0, 20.0);
  EXPECT_EQ(s.name(), "t_est");
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[1].v, 20.0);
}

TEST(SeriesTest, RejectsTimeGoingBackwards) {
  Series s("x");
  s.add(5.0, 1.0);
  EXPECT_THROW(s.add(4.0, 2.0), InvariantError);
  EXPECT_NO_THROW(s.add(5.0, 2.0));  // equal timestamps are fine
}

TEST(SeriesTest, ValueAtReturnsLastAtOrBefore) {
  Series s("x");
  s.add(1.0, 10.0);
  s.add(3.0, 30.0);
  EXPECT_DOUBLE_EQ(s.value_at(0.5, -1.0), -1.0);  // before first
  EXPECT_DOUBLE_EQ(s.value_at(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(2.0), 10.0);
  EXPECT_DOUBLE_EQ(s.value_at(3.0), 30.0);
  EXPECT_DOUBLE_EQ(s.value_at(99.0), 30.0);
}

TEST(SeriesTest, ValueAtOnEmptyUsesFallback) {
  Series s("x");
  EXPECT_DOUBLE_EQ(s.value_at(1.0, 7.0), 7.0);
}

TEST(SeriesTest, ThinnedKeepsEndpointsAndBound) {
  Series s("x");
  for (int i = 0; i < 1000; ++i) {
    s.add(static_cast<double>(i), static_cast<double>(i * i));
  }
  const auto thin = s.thinned(50);
  EXPECT_LE(thin.size(), 52u);
  EXPECT_DOUBLE_EQ(thin.front().t, 0.0);
  EXPECT_DOUBLE_EQ(thin.back().t, 999.0);
}

TEST(SeriesTest, ThinnedShortSeriesUnchanged) {
  Series s("x");
  s.add(0.0, 1.0);
  s.add(1.0, 2.0);
  EXPECT_EQ(s.thinned(100).size(), 2u);
}

TEST(BucketedSeriesTest, HourlyMeans) {
  BucketedSeries b("phd", 3600.0);
  b.add(100.0, 0.0);
  b.add(200.0, 1.0);
  b.add(4000.0, 0.5);
  const auto buckets = b.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].start, 0.0);
  EXPECT_DOUBLE_EQ(buckets[0].mean, 0.5);
  EXPECT_EQ(buckets[0].samples, 2u);
  EXPECT_DOUBLE_EQ(buckets[1].start, 3600.0);
  EXPECT_DOUBLE_EQ(buckets[1].mean, 0.5);
}

TEST(BucketedSeriesTest, EmptyBucketsOmitted) {
  BucketedSeries b("x", 10.0);
  b.add(5.0, 1.0);
  b.add(95.0, 3.0);
  const auto buckets = b.buckets();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[1].start, 90.0);
}

TEST(BucketedSeriesTest, RejectsBadInput) {
  EXPECT_THROW(BucketedSeries("x", 0.0), InvariantError);
  BucketedSeries b("x", 1.0);
  EXPECT_THROW(b.add(-1.0, 0.0), InvariantError);
}

}  // namespace
}  // namespace pabr::sim
