#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/check.h"

namespace pabr::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(SimulatorTest, RunUntilAdvancesClockToTarget) {
  Simulator s;
  s.run_until(10.0);
  EXPECT_DOUBLE_EQ(s.now(), 10.0);
}

TEST(SimulatorTest, EventsSeeTheirOwnTimestamp) {
  Simulator s;
  std::vector<double> seen;
  s.schedule_in(3.0, [&] { seen.push_back(s.now()); });
  s.schedule_in(7.0, [&] { seen.push_back(s.now()); });
  s.run_until(10.0);
  EXPECT_EQ(seen, (std::vector<double>{3.0, 7.0}));
  EXPECT_EQ(s.events_executed(), 2u);
}

TEST(SimulatorTest, EventsAfterHorizonStayPending) {
  Simulator s;
  int fired = 0;
  s.schedule_in(5.0, [&] { ++fired; });
  s.run_until(4.9);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(s.pending_events(), 1u);
  s.run_until(5.0);  // boundary-inclusive
  EXPECT_EQ(fired, 1);
}

TEST(SimulatorTest, EventsMayScheduleMoreEvents) {
  Simulator s;
  std::vector<double> seen;
  s.schedule_in(1.0, [&] {
    seen.push_back(s.now());
    s.schedule_in(1.0, [&] { seen.push_back(s.now()); });
  });
  s.run_until(10.0);
  EXPECT_EQ(seen, (std::vector<double>{1.0, 2.0}));
}

TEST(SimulatorTest, ScheduleAtAbsoluteTime) {
  Simulator s;
  double when = -1.0;
  s.schedule_at(4.5, [&] { when = s.now(); });
  s.run_until(5.0);
  EXPECT_DOUBLE_EQ(when, 4.5);
}

TEST(SimulatorTest, SchedulingIntoThePastThrows) {
  Simulator s;
  s.run_until(5.0);
  EXPECT_THROW(s.schedule_at(4.0, [] {}), InvariantError);
  EXPECT_THROW(s.schedule_in(-1.0, [] {}), InvariantError);
}

TEST(SimulatorTest, RunUntilBackwardsThrows) {
  Simulator s;
  s.run_until(5.0);
  EXPECT_THROW(s.run_until(4.0), InvariantError);
}

TEST(SimulatorTest, CancelledEventNeverFires) {
  Simulator s;
  int fired = 0;
  auto h = s.schedule_in(1.0, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(h));
  s.run_until(2.0);
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, StepExecutesSingleEvent) {
  Simulator s;
  int fired = 0;
  s.schedule_in(1.0, [&] { ++fired; });
  s.schedule_in(2.0, [&] { ++fired; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 1.0);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
  EXPECT_EQ(fired, 2);
}

TEST(SimulatorTest, StepRespectsLimit) {
  Simulator s;
  int fired = 0;
  s.schedule_in(5.0, [&] { ++fired; });
  EXPECT_FALSE(s.step(4.0));
  EXPECT_EQ(fired, 0);
}

TEST(SimulatorTest, ResetClearsClockAndQueue) {
  Simulator s;
  s.schedule_in(1.0, [] {});
  s.run_until(0.5);
  s.reset();
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
  EXPECT_EQ(s.pending_events(), 0u);
  EXPECT_EQ(s.events_executed(), 0u);
}

TEST(SimulatorTest, SameTimeEventsFireInScheduleOrder) {
  Simulator s;
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) {
    s.schedule_in(1.0, [&order, i] { order.push_back(i); });
  }
  s.run_until(1.0);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace pabr::sim
