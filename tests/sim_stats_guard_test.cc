// Regression tests for the stats-primitive guard rails:
//   * TimeWeightedMean rejects out-of-order updates, backwards resets and
//     mean() queries from before the averaging window — any of which
//     would silently corrupt the B_r / B_u time averages with
//     negative-width segments.
//   * Histogram::add drops NaN samples into a dedicated tally instead of
//     clamping them into an arbitrary edge bin (NaN fails both range
//     comparisons, so the old behavior depended on the sign convention
//     of the failed comparison chain).
#include "sim/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "util/check.h"

namespace pabr::sim {
namespace {

TEST(TimeWeightedMeanGuard, InOrderUpdatesAverageExactly) {
  TimeWeightedMean m;
  m.update(0.0, 2.0);
  m.update(10.0, 6.0);
  // [0,10) at 2, [10,20) at 6 -> mean 4.
  EXPECT_DOUBLE_EQ(m.mean(20.0), 4.0);
}

TEST(TimeWeightedMeanGuard, BackwardsUpdateThrows) {
  TimeWeightedMean m;
  m.update(10.0, 1.0);
  EXPECT_THROW(m.update(9.0, 2.0), InvariantError);
}

TEST(TimeWeightedMeanGuard, EqualTimeUpdateIsAllowed) {
  // Two state changes at the same instant are legal (zero-width segment);
  // the later value wins.
  TimeWeightedMean m;
  m.update(5.0, 1.0);
  m.update(5.0, 3.0);
  EXPECT_DOUBLE_EQ(m.current(), 3.0);
  EXPECT_DOUBLE_EQ(m.mean(15.0), 3.0);
}

TEST(TimeWeightedMeanGuard, BackwardsResetThrows) {
  TimeWeightedMean m;
  m.update(10.0, 1.0);
  EXPECT_THROW(m.reset(9.0), InvariantError);
}

TEST(TimeWeightedMeanGuard, ResetAtCurrentTimeRestartsWindow) {
  TimeWeightedMean m;
  m.update(0.0, 100.0);
  m.reset(10.0);
  m.update(10.0, 2.0);
  // The pre-reset history is gone: [10,20) at 2 -> mean 2.
  EXPECT_DOUBLE_EQ(m.mean(20.0), 2.0);
}

TEST(TimeWeightedMeanGuard, MeanBeforeWindowStartThrows) {
  TimeWeightedMean m;
  m.update(10.0, 1.0);
  EXPECT_THROW(m.mean(9.0), InvariantError);
}

TEST(TimeWeightedMeanGuard, MeanAtWindowStartIsZero) {
  TimeWeightedMean m;
  m.update(10.0, 1.0);
  EXPECT_DOUBLE_EQ(m.mean(10.0), 0.0);
}

TEST(TimeWeightedMeanGuard, MeanBeforeAnyUpdateIsZero) {
  const TimeWeightedMean m;
  EXPECT_DOUBLE_EQ(m.mean(5.0), 0.0);
}

TEST(HistogramGuard, NanSamplesAreDroppedAndCounted) {
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(std::nan(""));
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.nan_dropped(), 2u);
  for (const std::uint64_t b : h.bins()) EXPECT_EQ(b, 0u);
}

TEST(HistogramGuard, NanDoesNotPerturbRealSamples) {
  Histogram h(0.0, 10.0, 5);
  h.add(1.0);
  h.add(std::numeric_limits<double>::quiet_NaN());
  h.add(9.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.nan_dropped(), 1u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[4], 1u);
  // cdf ignores the dropped NaN entirely.
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
}

TEST(HistogramGuard, InfinityStillClampsIntoEdgeBins) {
  // +/-inf are genuine out-of-range samples, not NaN: they keep the
  // documented clamp-into-edge-bin behavior.
  Histogram h(0.0, 10.0, 5);
  h.add(std::numeric_limits<double>::infinity());
  h.add(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.total(), 2u);
  EXPECT_EQ(h.nan_dropped(), 0u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[4], 1u);
}

}  // namespace
}  // namespace pabr::sim
