#include "sim/stats.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::sim {
namespace {

TEST(CounterTest, CountsAndResets) {
  Counter c;
  EXPECT_EQ(c.count(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.count(), 5u);
  c.reset();
  EXPECT_EQ(c.count(), 0u);
}

TEST(RatioEstimatorTest, ValueIsHitsOverTrials) {
  RatioEstimator r;
  EXPECT_DOUBLE_EQ(r.value(), 0.0);  // no trials yet
  r.trial(true);
  r.trial(false);
  r.trial(false);
  r.trial(true);
  EXPECT_DOUBLE_EQ(r.value(), 0.5);
  EXPECT_EQ(r.hits(), 2u);
  EXPECT_EQ(r.trials(), 4u);
}

TEST(RatioEstimatorTest, BulkAddAndReset) {
  RatioEstimator r;
  r.add(3, 100);
  EXPECT_DOUBLE_EQ(r.value(), 0.03);
  r.reset();
  EXPECT_EQ(r.trials(), 0u);
  EXPECT_DOUBLE_EQ(r.value(), 0.0);
}

TEST(MeanAccumulatorTest, MeanOfSamples) {
  MeanAccumulator m;
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  m.add(1.0);
  m.add(2.0);
  m.add(6.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.0);
  EXPECT_EQ(m.samples(), 3u);
}

TEST(TimeWeightedMeanTest, PiecewiseConstantIntegration) {
  TimeWeightedMean tw;
  tw.update(0.0, 10.0);  // 10 over [0, 4]
  tw.update(4.0, 20.0);  // 20 over [4, 10]
  // mean over [0,10] = (10*4 + 20*6) / 10 = 16
  EXPECT_DOUBLE_EQ(tw.mean(10.0), 16.0);
  EXPECT_DOUBLE_EQ(tw.current(), 20.0);
}

TEST(TimeWeightedMeanTest, StartsAtFirstUpdate) {
  TimeWeightedMean tw;
  tw.update(5.0, 8.0);  // signal undefined before t = 5
  EXPECT_DOUBLE_EQ(tw.mean(10.0), 8.0);
}

TEST(TimeWeightedMeanTest, MeanBeforeAnyUpdateIsZero) {
  TimeWeightedMean tw;
  EXPECT_DOUBLE_EQ(tw.mean(5.0), 0.0);
}

TEST(TimeWeightedMeanTest, RepeatedSameTimeUpdatesKeepLast) {
  TimeWeightedMean tw;
  tw.update(0.0, 1.0);
  tw.update(0.0, 3.0);
  EXPECT_DOUBLE_EQ(tw.mean(2.0), 3.0);
}

TEST(TimeWeightedMeanTest, TimeBackwardsThrows) {
  TimeWeightedMean tw;
  tw.update(5.0, 1.0);
  EXPECT_THROW(tw.update(4.0, 2.0), InvariantError);
}

TEST(TimeWeightedMeanTest, ResetRestartsIntegration) {
  TimeWeightedMean tw;
  tw.update(0.0, 100.0);
  tw.reset(10.0);
  tw.update(10.0, 2.0);
  EXPECT_DOUBLE_EQ(tw.mean(20.0), 2.0);
}

TEST(HistogramTest, BinningAndTotal) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(5.5);
  h.add(5.6);
  h.add(9.99);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[5], 2u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(HistogramTest, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(50.0);
  EXPECT_EQ(h.bins()[0], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(HistogramTest, CdfInterpolates) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_DOUBLE_EQ(h.cdf(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_NEAR(h.cdf(5.0), 0.5, 1e-12);
}

TEST(HistogramTest, EmptyCdfIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);
}

TEST(HistogramTest, BinEdges) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.bin_low(3), 3.0);
  EXPECT_DOUBLE_EQ(h.bin_high(3), 4.0);
}

TEST(HistogramTest, DegenerateConstructionRejected) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), InvariantError);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), InvariantError);
}

}  // namespace
}  // namespace pabr::sim
