// Resume determinism (invariant I10) through the two stateful ladders a
// snapshot must not drop: the §5.3 blocked-call retry ladder (a pending
// re-request event mid-wait) and fault injection (snapshot taken inside
// a ScriptedOutage window, plus memoized stochastic outage timelines and
// their RNG stream positions). In every case the resumed run's digest
// must equal the uninterrupted run's bitwise.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>

#include "audit/differential.h"
#include "core/system.h"
#include "snapshot/format.h"

namespace pabr::core {
namespace {

traffic::ConnectionRequest request_at(traffic::ConnectionId id, double pos_km,
                                      int dir, double speed_kmh) {
  traffic::ConnectionRequest r;
  r.id = id;
  r.cell = static_cast<geom::CellId>(pos_km);
  r.position_km = pos_km;
  r.direction = dir;
  r.speed_kmh = speed_kmh;
  r.service = traffic::ServiceClass::kVoice;
  r.lifetime_s = 1e6;
  return r;
}

// Saves `sys` at its current clock, loads the snapshot, and returns the
// loaded twin (also handing back the raw bytes for section checks).
std::unique_ptr<CellularSystem> reload(CellularSystem& sys,
                                       std::string* bytes = nullptr) {
  std::ostringstream os(std::ios::binary);
  sys.save(os);
  if (bytes != nullptr) *bytes = os.str();
  std::istringstream is(os.str(), std::ios::binary);
  return CellularSystem::load(is);
}

std::uint64_t finish_digest(CellularSystem& sys, sim::Time end) {
  sys.run_until(end);
  sys.audit_invariants();
  return audit::trajectory_digest(sys);
}

TEST(SnapshotFaultResumeTest, ResumeMidRetryWaitKeepsTheLadder) {
  SystemConfig cfg;
  cfg.policy = admission::PolicyKind::kStatic;
  cfg.static_g = 99.5;  // only 0.5 BU admissible: every request blocks
  cfg.workload.arrival_rate_per_cell = 0.0;
  cfg.retry.enabled = true;
  cfg.retry.giveup_step = 0.0;  // retry with probability 1, forever

  const auto submit = [](CellularSystem& sys) {
    sys.submit_request(request_at(1, 5.5, +1, 36.0));
    sys.submit_request(request_at(2, 3.25, -1, 54.0));
  };

  CellularSystem straight(cfg);
  submit(straight);
  const std::uint64_t expected = finish_digest(straight, 30.0);
  EXPECT_EQ(straight.system_status().blocks,
            straight.system_status().requests);

  CellularSystem sys(cfg);
  submit(sys);
  sys.run_until(2.5);  // both 5 s retry waits are pending
  std::string bytes;
  const auto resumed = reload(sys, &bytes);

  // The snapshot really carried pending retries: the "retries" section
  // holds the token counter (8) + count (4) + at least one entry.
  std::istringstream is(bytes, std::ios::binary);
  const snapshot::Reader reader(is);
  ASSERT_TRUE(reader.has_section("retries"));
  snapshot::Decoder d = reader.open("retries");
  d.u64();  // next token
  EXPECT_EQ(d.u32(), 2u) << "expected both retry waits pending at t=2.5";

  EXPECT_EQ(finish_digest(*resumed, 30.0), expected);
}

#ifdef PABR_FAULT_ENABLED

SystemConfig faulty_config() {
  SystemConfig cfg;
  cfg.seed = 11;
  cfg.policy = admission::PolicyKind::kAc2;
  cfg.workload.arrival_rate_per_cell = 0.3;
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  return cfg;
}

TEST(SnapshotFaultResumeTest, ResumeInsideScriptedOutageWindow) {
  SystemConfig cfg = faulty_config();
  fault::ScriptedOutage station;
  station.kind = fault::ScriptedOutage::Kind::kStation;
  station.a = 4;
  station.from = 100.0;
  station.until = 200.0;
  fault::ScriptedOutage link;
  link.kind = fault::ScriptedOutage::Kind::kLink;
  link.a = 6;
  link.b = 7;
  link.from = 120.0;
  link.until = 260.0;
  cfg.fault.outages = {station, link};

  CellularSystem straight(cfg);
  const std::uint64_t expected = finish_digest(straight, 400.0);

  CellularSystem sys(cfg);
  sys.run_until(150.0);  // inside both outage windows
  std::string bytes;
  const auto resumed = reload(sys, &bytes);
  std::istringstream is(bytes, std::ios::binary);
  const snapshot::Reader reader(is);
  ASSERT_TRUE(reader.has_section("fault"));
  EXPECT_EQ(finish_digest(*resumed, 400.0), expected);
}

TEST(SnapshotFaultResumeTest, ResumeKeepsStochasticTimelinesAndBackoff) {
  // Stochastic link + station outages and lossy messaging drive the
  // timeout/backoff ladder constantly; the memoized timelines (flip
  // lists, RNG positions, coverage horizons) must survive the restore.
  SystemConfig cfg = faulty_config();
  cfg.fault.link_mtbf_s = 300.0;
  cfg.fault.link_mttr_s = 40.0;
  cfg.fault.station_mtbf_s = 900.0;
  cfg.fault.station_mttr_s = 60.0;
  cfg.fault.message_loss = 0.05;

  CellularSystem straight(cfg);
  const std::uint64_t expected = finish_digest(straight, 500.0);

  for (const double t_snap : {90.0, 250.0, 410.0}) {
    CellularSystem sys(cfg);
    sys.run_until(t_snap);
    const auto resumed = reload(sys);
    EXPECT_EQ(finish_digest(*resumed, 500.0), expected)
        << "snapshot at t=" << t_snap;
  }
}

#endif  // PABR_FAULT_ENABLED

}  // namespace
}  // namespace pabr::core
