// Snapshot container format (src/snapshot/format.h): encode/decode
// round-trips, header metadata, and the Reader's strictness — bad magic,
// unknown versions, checksum mismatches, truncation and over/under-reads
// must all throw FormatError before any simulation state is built.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "snapshot/format.h"

namespace pabr::snapshot {
namespace {

std::string write_sample() {
  Writer w(SystemKind::kLinear, /*config_digest=*/0x1234abcd5678ef01ull,
           /*sim_time=*/123.5, /*run_seed=*/42);
  {
    auto& e = w.begin_section("alpha");
    e.u8(7);
    e.b(true);
    e.u32(0xdeadbeefu);
    e.u64(0x0123456789abcdefull);
    e.i64(-17);
    e.f64(-0.125);
    e.str("hello snapshot");
  }
  {
    auto& e = w.begin_section("beta");
    e.f64(2.5e300);
  }
  std::ostringstream os(std::ios::binary);
  w.finish(os);
  return os.str();
}

Reader read_bytes(const std::string& bytes) {
  std::istringstream is(bytes, std::ios::binary);
  return Reader(is);
}

TEST(SnapshotFormatTest, RoundTripsHeaderAndSections) {
  const Reader r = read_bytes(write_sample());
  EXPECT_EQ(r.header().format_version, kFormatVersion);
  EXPECT_EQ(r.header().kind, SystemKind::kLinear);
  EXPECT_EQ(r.header().config_digest, 0x1234abcd5678ef01ull);
  EXPECT_EQ(r.header().sim_time, 123.5);
  EXPECT_EQ(r.header().run_seed, 42u);
  ASSERT_EQ(r.sections().size(), 2u);
  EXPECT_TRUE(r.has_section("alpha"));
  EXPECT_TRUE(r.has_section("beta"));
  EXPECT_FALSE(r.has_section("gamma"));

  Decoder d = r.open("alpha");
  EXPECT_EQ(d.u8(), 7u);
  EXPECT_TRUE(d.b());
  EXPECT_EQ(d.u32(), 0xdeadbeefu);
  EXPECT_EQ(d.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(d.i64(), -17);
  EXPECT_EQ(d.f64(), -0.125);
  EXPECT_EQ(d.str(), "hello snapshot");
  EXPECT_EQ(d.remaining(), 0u);
  d.finish();

  Decoder b = r.open("beta");
  EXPECT_EQ(b.f64(), 2.5e300);
  b.finish();
  r.require_kind(SystemKind::kLinear);
}

TEST(SnapshotFormatTest, WritesAreByteDeterministic) {
  EXPECT_EQ(write_sample(), write_sample());
}

TEST(SnapshotFormatTest, RejectsBadMagic) {
  std::string bytes = write_sample();
  bytes[0] = 'X';
  EXPECT_THROW(read_bytes(bytes), FormatError);
}

TEST(SnapshotFormatTest, RejectsUnknownFormatVersion) {
  std::string bytes = write_sample();
  // The u32 format version sits directly after the 8-byte magic.
  bytes[8] = static_cast<char>(0x7f);
  EXPECT_THROW(read_bytes(bytes), FormatError);
}

TEST(SnapshotFormatTest, RejectsCorruptedSectionPayload) {
  std::string bytes = write_sample();
  // Flip one bit near the end (inside the last section's payload) — the
  // section checksum must catch it.
  bytes[bytes.size() - 3] = static_cast<char>(bytes[bytes.size() - 3] ^ 0x10);
  EXPECT_THROW(read_bytes(bytes), FormatError);
}

TEST(SnapshotFormatTest, RejectsTruncation) {
  const std::string bytes = write_sample();
  // Any proper prefix must fail: sample a few cut points including the
  // header, a section frame, and mid-payload.
  for (const std::size_t keep :
       {bytes.size() - 1, bytes.size() / 2, std::size_t{11}, std::size_t{3}}) {
    EXPECT_THROW(read_bytes(bytes.substr(0, keep)), FormatError)
        << "cut at " << keep;
  }
}

TEST(SnapshotFormatTest, RejectsWrongKindAndMissingSection) {
  const Reader r = read_bytes(write_sample());
  EXPECT_THROW(r.require_kind(SystemKind::kSharded), FormatError);
  EXPECT_THROW(r.open("gamma"), FormatError);
}

TEST(SnapshotFormatTest, DecoderRejectsOverAndUnderReads) {
  const Reader r = read_bytes(write_sample());
  {
    Decoder d = r.open("beta");
    EXPECT_NO_THROW(d.f64());
    EXPECT_THROW(d.u8(), FormatError);  // past the end
  }
  {
    const Decoder d = r.open("beta");
    EXPECT_THROW(d.finish(), FormatError);  // 8 unread bytes
  }
}

}  // namespace
}  // namespace pabr::snapshot
