// Invariant I10 (DESIGN.md §13): resuming a simulation from a snapshot
// is invisible — the resumed run's trajectory digest is bitwise
// identical to the uninterrupted run's, for linear and hex systems, at
// any snapshot point, through chains of snapshots, and (in PABR_FAULT
// builds) under random fault schedules. Also pins down the byte-level
// contract: saving is deterministic, and a freshly loaded system saves
// back the identical bytes.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <vector>

#include "audit/differential.h"
#include "core/hex_system.h"
#include "core/random_scenario.h"
#include "core/system.h"
#include "snapshot/format.h"
#include "util/buildinfo.h"

namespace pabr {
namespace {

constexpr int kAuditEvery = 4;

TEST(SnapshotResumeTest, ResumedDigestMatchesUninterrupted) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const core::ScenarioSpec spec = core::random_scenario(seed);
    const std::uint64_t straight =
        audit::run_scenario_digest(spec, true, kAuditEvery);
    const double frac = audit::snapshot_fraction_for_seed(seed);
    EXPECT_EQ(straight,
              audit::run_scenario_resume_digest(spec, true, kAuditEvery, frac))
        << spec.summary() << " snapshot at fraction " << frac;
  }
}

TEST(SnapshotResumeTest, ChainedSnapshotsMatchUninterrupted) {
  const std::vector<double> fractions = {0.2, 0.45, 0.7, 0.95};
  for (std::uint64_t seed = 20; seed <= 24; ++seed) {
    const core::ScenarioSpec spec = core::random_scenario(seed);
    EXPECT_EQ(
        audit::run_scenario_digest(spec, true, kAuditEvery),
        audit::run_scenario_resume_digest(spec, true, kAuditEvery, fractions))
        << spec.summary();
  }
}

TEST(SnapshotResumeTest, ResumeAtBoundariesMatches) {
  const core::ScenarioSpec spec = core::random_scenario(3);
  const std::uint64_t straight =
      audit::run_scenario_digest(spec, true, kAuditEvery);
  // t = 0 (nothing has run) and t = duration (nothing left to run).
  EXPECT_EQ(straight,
            audit::run_scenario_resume_digest(spec, true, kAuditEvery, 0.0));
  EXPECT_EQ(straight,
            audit::run_scenario_resume_digest(spec, true, kAuditEvery, 1.0));
}

TEST(SnapshotResumeTest, ScratchModeResumesIdentically) {
  for (std::uint64_t seed = 30; seed <= 33; ++seed) {
    const core::ScenarioSpec spec = core::random_scenario(seed);
    EXPECT_EQ(audit::run_scenario_digest(spec, false, kAuditEvery),
              audit::run_scenario_resume_digest(spec, false, kAuditEvery, 0.5))
        << spec.summary();
  }
}

TEST(SnapshotResumeTest, ResumedDigestMatchesUnderFaults) {
  if (!buildinfo::fault_enabled()) GTEST_SKIP() << "PABR_FAULT=OFF";
  for (std::uint64_t seed = 40; seed <= 47; ++seed) {
    const core::ScenarioSpec spec =
        core::random_scenario(seed, /*with_faults=*/true);
    const std::uint64_t straight =
        audit::run_scenario_digest(spec, true, kAuditEvery);
    const double frac = audit::snapshot_fraction_for_seed(seed);
    EXPECT_EQ(straight,
              audit::run_scenario_resume_digest(spec, true, kAuditEvery, frac))
        << spec.summary();
  }
}

// Saving the same state twice yields identical bytes, and a loaded
// system immediately saves back the exact bytes it was loaded from —
// the save/load pair is a fixed point, not merely digest-equivalent.
TEST(SnapshotResumeTest, SaveIsAFixedPointThroughLoad) {
  core::SystemConfig cfg;
  cfg.seed = 9;
  core::CellularSystem sys(cfg);
  sys.run_for(400.0);

  std::ostringstream a(std::ios::binary);
  std::ostringstream b(std::ios::binary);
  sys.save(a);
  sys.save(b);
  EXPECT_EQ(a.str(), b.str());

  std::istringstream in(a.str(), std::ios::binary);
  const auto loaded = core::CellularSystem::load(in);
  std::ostringstream c(std::ios::binary);
  loaded->save(c);
  EXPECT_EQ(a.str(), c.str());

  // The emitted bytes validate as a well-formed snapshot file.
  std::istringstream validate(a.str(), std::ios::binary);
  const snapshot::Reader reader(validate);
  EXPECT_EQ(reader.header().kind, snapshot::SystemKind::kLinear);
  EXPECT_EQ(reader.header().sim_time, sys.now());
  EXPECT_EQ(reader.header().run_seed, cfg.seed);
  EXPECT_TRUE(reader.has_section("cells"));
  EXPECT_TRUE(reader.has_section("rngs"));
  EXPECT_TRUE(reader.has_section("engine"));
}

// A hex snapshot refuses to load as a linear system and vice versa.
TEST(SnapshotResumeTest, LoadRejectsWrongSystemKind) {
  core::HexSystemConfig cfg;
  cfg.seed = 5;
  core::HexCellularSystem sys(cfg);
  sys.run_for(50.0);
  std::ostringstream os(std::ios::binary);
  sys.save(os);
  std::istringstream is(os.str(), std::ios::binary);
  EXPECT_THROW(core::CellularSystem::load(is), snapshot::FormatError);
}

}  // namespace
}  // namespace pabr
