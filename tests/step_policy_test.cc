// The §4.2 step-size ablation machinery: additive/multiplicative step
// growth for consecutive same-direction T_est moves (the paper found
// these over-react and kept fixed 1-s steps).
#include <gtest/gtest.h>

#include "reservation/test_window.h"

namespace pabr::reservation {
namespace {

constexpr double kBigSojMax = 1e6;

TestWindowConfig config_with(StepPolicy policy, double t_start = 1.0) {
  TestWindowConfig cfg;
  cfg.phd_target = 0.01;
  cfg.t_start = t_start;
  cfg.step_policy = policy;
  return cfg;
}

// Feeds `n` consecutive quota-exceeding drops (each drop after the first
// grows T_est under every policy).
void feed_drops(TestWindowController& c, int n) {
  for (int i = 0; i < n; ++i) c.on_handoff(true, kBigSojMax);
}

// Runs `windows` full quiet windows, each of which shrinks T_est once.
void feed_quiet_windows(TestWindowController& c, int windows) {
  for (int w = 0; w < windows; ++w) {
    const auto span = c.window_size() + 1;
    for (std::uint64_t i = 0; i < span; ++i) c.on_handoff(false, kBigSojMax);
  }
}

TEST(StepPolicyTest, FixedGrowsLinearly) {
  TestWindowController c(config_with(StepPolicy::kFixed));
  feed_drops(c, 5);  // drops 2..5 trigger growth
  EXPECT_DOUBLE_EQ(c.t_est(), 5.0);
}

TEST(StepPolicyTest, AdditiveGrowsTriangularly) {
  TestWindowController c(config_with(StepPolicy::kAdditive));
  feed_drops(c, 5);
  // Steps 1, 2, 3, 4 for the four growth events: 1 + (1+2+3+4) = 11.
  EXPECT_DOUBLE_EQ(c.t_est(), 11.0);
}

TEST(StepPolicyTest, MultiplicativeGrowsGeometrically) {
  TestWindowController c(config_with(StepPolicy::kMultiplicative));
  feed_drops(c, 5);
  // Steps 1, 2, 4, 8: 1 + 15 = 16.
  EXPECT_DOUBLE_EQ(c.t_est(), 16.0);
}

TEST(StepPolicyTest, DirectionChangeResetsStreak) {
  TestWindowController c(config_with(StepPolicy::kAdditive, 20.0));
  feed_drops(c, 3);  // growth events with steps 1, 2 -> 23
  EXPECT_DOUBLE_EQ(c.t_est(), 23.0);
  // The first window still contains the 3 drops (= quota): it closes
  // without shrinking and resets the counters.
  feed_quiet_windows(c, 1);
  EXPECT_DOUBLE_EQ(c.t_est(), 23.0);
  // A genuinely quiet window shrinks with a fresh streak: step 1 -> 22.
  feed_quiet_windows(c, 1);
  EXPECT_DOUBLE_EQ(c.t_est(), 22.0);
  // A second consecutive quiet window shrinks by 2 -> 20.
  feed_quiet_windows(c, 1);
  EXPECT_DOUBLE_EQ(c.t_est(), 20.0);
  // Now a growth run starts again at step 1 (streak reset): drops 1 and 2,
  // only the 2nd exceeds quota -> 21.
  feed_drops(c, 2);
  EXPECT_DOUBLE_EQ(c.t_est(), 21.0);
}

TEST(StepPolicyTest, MultiplicativeStillClampedByTSojMax) {
  TestWindowController c(config_with(StepPolicy::kMultiplicative));
  for (int i = 0; i < 20; ++i) c.on_handoff(true, 10.0);
  EXPECT_DOUBLE_EQ(c.t_est(), 10.0);  // clamped, not 2^k
}

TEST(StepPolicyTest, LargeStepsNeverUndershootTMin) {
  TestWindowConfig cfg = config_with(StepPolicy::kMultiplicative, 6.0);
  TestWindowController c(cfg);
  feed_quiet_windows(c, 4);  // shrink steps 1, 2, 4, 8 -> would go negative
  EXPECT_GE(c.t_est(), cfg.t_min);
  EXPECT_DOUBLE_EQ(c.t_est(), 1.0);
}

TEST(StepPolicyTest, Names) {
  EXPECT_STREQ(step_policy_name(StepPolicy::kFixed), "fixed");
  EXPECT_STREQ(step_policy_name(StepPolicy::kAdditive), "additive");
  EXPECT_STREQ(step_policy_name(StepPolicy::kMultiplicative),
               "multiplicative");
}

TEST(StepPolicyTest, FixedMatchesPaperPseudocodeExactly) {
  // Regression guard: with kFixed the controller must behave identically
  // to the verbatim Fig. 6 transcription used across the test suite.
  TestWindowController c(config_with(StepPolicy::kFixed, 5.0));
  c.on_handoff(true, kBigSojMax);
  for (int i = 0; i < 100; ++i) c.on_handoff(false, kBigSojMax);
  EXPECT_DOUBLE_EQ(c.t_est(), 5.0);  // exact quota: hold
}

}  // namespace
}  // namespace pabr::reservation
