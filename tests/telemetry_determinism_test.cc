// Determinism contract: telemetry is write-only observation, so the
// trajectory digest of any scenario is byte-identical with telemetry off,
// on with metrics only, or on with full tracing. In PABR_TELEMETRY=OFF
// builds the same tests prove the inert config has no effect at all.
#include <gtest/gtest.h>

#include <cstdint>

#include "audit/differential.h"
#include "core/random_scenario.h"
#include "telemetry/telemetry.h"

namespace pabr {
namespace {

telemetry::TelemetryConfig full_telemetry() {
  telemetry::TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.trace = true;
  cfg.time_admissions = true;
  return cfg;
}

telemetry::TelemetryConfig metrics_only() {
  telemetry::TelemetryConfig cfg;
  cfg.enabled = true;
  cfg.trace = false;
  cfg.time_admissions = false;
  return cfg;
}

void expect_digest_invariant(std::uint64_t seed) {
  core::ScenarioSpec base = core::random_scenario(seed);

  core::ScenarioSpec with_full = base;
  with_full.linear.telemetry = full_telemetry();
  with_full.grid.telemetry = full_telemetry();

  core::ScenarioSpec with_metrics = base;
  with_metrics.linear.telemetry = metrics_only();
  with_metrics.grid.telemetry = metrics_only();

  const std::uint64_t off = audit::run_scenario_digest(base, true, 0);
  const std::uint64_t full = audit::run_scenario_digest(with_full, true, 0);
  const std::uint64_t metrics =
      audit::run_scenario_digest(with_metrics, true, 0);
  EXPECT_EQ(off, full) << base.summary();
  EXPECT_EQ(off, metrics) << base.summary();
}

TEST(TelemetryDeterminismTest, DigestUnchangedAcrossSeeds) {
  // random_scenario draws both linear and hex topologies across this
  // range, so both simulators get covered.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    expect_digest_invariant(seed);
  }
}

TEST(TelemetryDeterminismTest, DigestUnchangedWithTinyRingAndSampling) {
  // Rotation and sampling drop trace records; they must not drop events.
  core::ScenarioSpec base = core::random_scenario(5);
  core::ScenarioSpec tiny = base;
  telemetry::TelemetryConfig cfg = full_telemetry();
  cfg.trace_capacity = 64;      // forces heavy rotation
  cfg.trace_sample_every = 7;   // and sampling
  tiny.linear.telemetry = cfg;
  tiny.grid.telemetry = cfg;
  EXPECT_EQ(audit::run_scenario_digest(base, true, 0),
            audit::run_scenario_digest(tiny, true, 0))
      << base.summary();
}

TEST(TelemetryDeterminismTest, DigestUnchangedInFromScratchMode) {
  core::ScenarioSpec base = core::random_scenario(9);
  core::ScenarioSpec traced = base;
  traced.linear.telemetry = full_telemetry();
  traced.grid.telemetry = full_telemetry();
  EXPECT_EQ(audit::run_scenario_digest(base, false, 0),
            audit::run_scenario_digest(traced, false, 0))
      << base.summary();
}

}  // namespace
}  // namespace pabr
