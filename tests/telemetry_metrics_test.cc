// Counters, gauges, histograms, the registry, and snapshot merging
// (telemetry/metrics.h).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace pabr::telemetry {
namespace {

TEST(TelemetryMetricsTest, CounterAddsAndResets) {
  Counter c;
  EXPECT_EQ(c.count(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.count(), 42u);
  c.reset();
  EXPECT_EQ(c.count(), 0u);
}

TEST(TelemetryMetricsTest, BumpIsNullSafe) {
  bump(nullptr);  // must not crash in any build
  Counter c;
  bump(&c, 3);
#ifdef PABR_TELEMETRY_ENABLED
  EXPECT_EQ(c.count(), 3u);
#else
  EXPECT_EQ(c.count(), 0u);  // compiled-out hooks do nothing
#endif
}

TEST(TelemetryMetricsTest, HistogramBucketsAndStats) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {0.5, 1.5, 1.6, 9.9}) h.add(x);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 9.9);
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[9], 1u);
}

TEST(TelemetryMetricsTest, HistogramRoutesOutOfRangeToOverflowBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(10.0);  // hi edge is exclusive -> overflow, not the last bucket
  h.add(1e9);
  EXPECT_EQ(h.count(), 3u);  // every sample is still accounted for
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  // The edge buckets stay clean: a saturated last bucket now always means
  // genuine in-range mass, never a mis-sized range.
  EXPECT_EQ(h.buckets().front(), 0u);
  EXPECT_EQ(h.buckets().back(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), -100.0);
  EXPECT_DOUBLE_EQ(h.max(), 1e9);
}

TEST(TelemetryMetricsTest, HistogramSamplesBeyondTopEdgeAreCounted) {
  Histogram h(0.0, 1.0, 4);
  for (int i = 0; i < 7; ++i) h.add(2.0 + i);  // all beyond the top edge
  h.add(0.5);
  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.overflow(), 7u);
  EXPECT_EQ(h.underflow(), 0u);
  std::uint64_t in_range = 0;
  for (std::uint64_t b : h.buckets()) in_range += b;
  EXPECT_EQ(in_range, 1u);
  // Quantiles past the in-range mass report the top edge — the tightest
  // bound the layout can give — instead of pretending the tail is inside.
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 1.0);
  h.reset();
  EXPECT_EQ(h.overflow(), 0u);
  EXPECT_EQ(h.underflow(), 0u);
}

TEST(TelemetryMetricsTest, SnapshotAndMergeCarryOverflowCounts) {
  Registry r1, r2;
  Histogram* h1 = r1.histogram("h", 0.0, 10.0, 10);
  Histogram* h2 = r2.histogram("h", 0.0, 10.0, 10);
  h1->add(-1.0);
  h1->add(5.0);
  h2->add(99.0);
  h2->add(42.0);
  const MetricsSnapshot m = merge_snapshots({r1.snapshot(), r2.snapshot()});
  ASSERT_EQ(m.histograms.size(), 1u);
  EXPECT_EQ(m.histograms[0].count, 4u);
  EXPECT_EQ(m.histograms[0].underflow, 1u);
  EXPECT_EQ(m.histograms[0].overflow, 2u);
}

TEST(TelemetryMetricsTest, HistogramQuantiles) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i) + 0.5);
  // Uniform fill: quantiles land near q * range.
  EXPECT_NEAR(h.quantile(0.50), 50.0, 1.0);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.0);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.0);
  Histogram empty(0.0, 1.0, 4);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
}

TEST(TelemetryMetricsTest, RegistryDeduplicatesByName) {
  Registry reg;
  Counter* a = reg.counter("x");
  Counter* b = reg.counter("x");
  EXPECT_EQ(a, b);
  EXPECT_NE(reg.counter("y"), a);
  Histogram* h1 = reg.histogram("h", 0.0, 1.0, 4);
  Histogram* h2 = reg.histogram("h", 0.0, 99.0, 7);  // layout ignored
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->buckets().size(), 4u);
  EXPECT_EQ(reg.instruments(), 3u);  // x, y, h
}

TEST(TelemetryMetricsTest, SnapshotPreservesRegistrationOrder) {
  Registry reg;
  reg.counter("b")->add(2);
  reg.counter("a")->add(1);
  reg.gauge("g")->set(3.5);
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "b");  // registration order, not sorted
  EXPECT_EQ(snap.counters[1].first, "a");
  EXPECT_EQ(snap.counter("b"), 2u);
  EXPECT_EQ(snap.counter("missing"), 0u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 3.5);
}

TEST(TelemetryMetricsTest, RegistryResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter* c = reg.counter("c");
  c->add(5);
  reg.histogram("h", 0.0, 1.0, 2)->add(0.5);
  reg.reset();
  EXPECT_EQ(c->count(), 0u);
  EXPECT_EQ(reg.counter("c"), c);  // same object survives
  EXPECT_EQ(reg.snapshot().histograms[0].count, 0u);
}

TEST(TelemetryMetricsTest, MergeSnapshotsSumsCountersAveragesGauges) {
  Registry r1, r2;
  r1.counter("n")->add(3);
  r2.counter("n")->add(4);
  r2.counter("only2")->add(1);
  r1.gauge("g")->set(10.0);
  r2.gauge("g")->set(20.0);
  const MetricsSnapshot m =
      merge_snapshots({r1.snapshot(), r2.snapshot()});
  EXPECT_EQ(m.counter("n"), 7u);
  EXPECT_EQ(m.counter("only2"), 1u);
  ASSERT_EQ(m.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(m.gauges[0].second, 15.0);
}

TEST(TelemetryMetricsTest, MergeSnapshotsMergesHistogramsBucketwise) {
  Registry r1, r2;
  Histogram* h1 = r1.histogram("h", 0.0, 10.0, 10);
  Histogram* h2 = r2.histogram("h", 0.0, 10.0, 10);
  for (int i = 0; i < 50; ++i) h1->add(2.5);
  for (int i = 0; i < 50; ++i) h2->add(7.5);
  const MetricsSnapshot m =
      merge_snapshots({r1.snapshot(), r2.snapshot()});
  ASSERT_EQ(m.histograms.size(), 1u);
  const HistogramSummary& h = m.histograms[0];
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum, 500.0);
  EXPECT_DOUBLE_EQ(h.min, 2.5);
  EXPECT_DOUBLE_EQ(h.max, 7.5);
  // Median of the merged distribution sits between the two spikes.
  EXPECT_NEAR(h.p50, 3.0, 0.5);
  EXPECT_NEAR(h.p99, 8.0, 0.5);
}

}  // namespace
}  // namespace pabr::telemetry
