// Trace ring buffer semantics (rotation, sampling) and the .pabrtrace
// file round-trip (telemetry/trace.h).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/trace.h"

namespace pabr::telemetry {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TraceRecord make_record(std::uint64_t i) {
  TraceRecord r;
  r.t = 0.001 * static_cast<double>(i);
  r.cell = static_cast<std::int32_t>(i % 7);
  r.kind = static_cast<std::uint16_t>(1 + i % 17);
  r.mobile = i;
  r.payload = static_cast<double>(i) * 0.5;
  return r;
}

TEST(TelemetryTraceTest, RecordLayoutIsStable) {
  EXPECT_EQ(sizeof(TraceRecord), 32u);
}

TEST(TelemetryTraceTest, BufferKeepsInsertionOrderBelowCapacity) {
  TraceBuffer buf(16);
  for (std::uint64_t i = 0; i < 5; ++i) {
    buf.emit(static_cast<double>(i), EventKind::kAdmit,
             static_cast<std::int32_t>(i), 100 + i, 1.0);
  }
  EXPECT_EQ(buf.size(), 5u);
  EXPECT_EQ(buf.emitted(), 5u);
  EXPECT_EQ(buf.rotated_out(), 0u);
  const auto recs = buf.records();
  ASSERT_EQ(recs.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_DOUBLE_EQ(recs[i].t, static_cast<double>(i));
    EXPECT_EQ(recs[i].mobile, 100 + i);
  }
}

TEST(TelemetryTraceTest, RingRotatesOutOldestAndCountsDrops) {
  TraceBuffer buf(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    buf.emit(static_cast<double>(i), EventKind::kBlock, 0, i, 0.0);
  }
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.emitted(), 10u);
  EXPECT_EQ(buf.rotated_out(), 6u);
  const auto recs = buf.records();  // oldest-first after wrap
  ASSERT_EQ(recs.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(recs[i].mobile, 6 + i);
  }
}

TEST(TelemetryTraceTest, ZeroCapacityDisablesCollection) {
  TraceBuffer buf(0);
  buf.emit(1.0, EventKind::kAdmit, 0, 1, 1.0);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_TRUE(buf.records().empty());
}

TEST(TelemetryTraceTest, SamplerKeepsEveryNthDeterministically) {
  TraceBuffer a(64, 3);
  TraceBuffer b(64, 3);
  for (std::uint64_t i = 0; i < 30; ++i) {
    a.emit(static_cast<double>(i), EventKind::kHandoff, 0, i, 0.0);
    b.emit(static_cast<double>(i), EventKind::kHandoff, 0, i, 0.0);
  }
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(a.emitted(), 30u);
  EXPECT_EQ(a.sampled_out(), 20u);
  // Determinism: two buffers fed identically keep identical records.
  const auto ra = a.records();
  const auto rb = b.records();
  ASSERT_EQ(ra.size(), rb.size());
  for (std::size_t i = 0; i < ra.size(); ++i) {
    EXPECT_EQ(ra[i].mobile, rb[i].mobile);
  }
}

TEST(TelemetryTraceTest, DrainReturnsRecordsAndEmptiesRing) {
  TraceBuffer buf(8);
  buf.emit(1.0, EventKind::kExpiry, 2, 3, 4.0);
  const auto recs = buf.drain();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.emitted(), 1u);  // counters survive a drain
}

TEST(TelemetryTraceTest, ClearResetsRecordsAndCounters) {
  TraceBuffer buf(2);
  for (std::uint64_t i = 0; i < 5; ++i) {
    buf.emit(0.0, EventKind::kAdmit, 0, i, 0.0);
  }
  buf.clear();
  EXPECT_EQ(buf.size(), 0u);
  EXPECT_EQ(buf.emitted(), 0u);
  EXPECT_EQ(buf.rotated_out(), 0u);
}

TEST(TelemetryTraceTest, MetaRoundTripsThroughFile) {
  TraceMeta meta;
  meta.set("bench", "unit_test");
  meta.set("seed", "42");
  meta.set("note", "value with spaces, punctuation: ok");
  const std::string path = temp_path("meta_roundtrip.pabrtrace");
  ASSERT_TRUE(write_trace(path, meta, {}));
  const auto file = read_trace(path);
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->meta.get("bench"), "unit_test");
  EXPECT_EQ(file->meta.get("seed"), "42");
  EXPECT_EQ(file->meta.get("note"), "value with spaces, punctuation: ok");
  EXPECT_EQ(file->meta.get("absent"), "");
  EXPECT_TRUE(file->records.empty());
  std::remove(path.c_str());
}

TEST(TelemetryTraceTest, LargeTraceRoundTripsExactly) {
  // Acceptance criterion: >= 100k records survive write/read bit-exactly.
  constexpr std::uint64_t kCount = 120'000;
  std::vector<TraceRecord> records;
  records.reserve(kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) records.push_back(make_record(i));

  TraceMeta meta;
  meta.set("bench", "roundtrip_100k");
  const std::string path = temp_path("large_roundtrip.pabrtrace");
  ASSERT_TRUE(write_trace(path, meta, records, /*rotated_out=*/7));

  const auto file = read_trace(path);
  ASSERT_TRUE(file.has_value());
  EXPECT_EQ(file->rotated_out, 7u);
  ASSERT_EQ(file->records.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; i += 997) {  // spot-check stride
    const TraceRecord& got = file->records[i];
    const TraceRecord want = make_record(i);
    EXPECT_DOUBLE_EQ(got.t, want.t);
    EXPECT_EQ(got.cell, want.cell);
    EXPECT_EQ(got.kind, want.kind);
    EXPECT_EQ(got.mobile, want.mobile);
    EXPECT_DOUBLE_EQ(got.payload, want.payload);
  }
  // Endpoints exactly.
  EXPECT_EQ(file->records.front().mobile, 0u);
  EXPECT_EQ(file->records.back().mobile, kCount - 1);
  std::remove(path.c_str());
}

TEST(TelemetryTraceTest, MergedStreamsAreStampedBySlotIndex) {
  std::vector<std::vector<TraceRecord>> streams(3);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 4; ++i) {
      streams[static_cast<std::size_t>(s)].push_back(
          make_record(static_cast<std::uint64_t>(s * 100 + i)));
    }
  }
  TraceMeta meta;
  meta.set("bench", "merged");
  const std::string path = temp_path("merged_streams.pabrtrace");
  ASSERT_TRUE(write_merged_trace(path, meta, streams));
  const auto file = read_trace(path);
  ASSERT_TRUE(file.has_value());
  ASSERT_EQ(file->records.size(), 12u);
  for (std::size_t i = 0; i < 12; ++i) {
    // Slot order, not arrival order: stream s occupies [4s, 4s+4).
    EXPECT_EQ(file->records[i].stream, static_cast<std::uint16_t>(i / 4));
    EXPECT_EQ(file->records[i].mobile,
              static_cast<std::uint64_t>((i / 4) * 100 + i % 4));
  }
  std::remove(path.c_str());
}

TEST(TelemetryTraceTest, ReadRejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(read_trace(temp_path("no_such_file.pabrtrace")).has_value());

  const std::string path = temp_path("corrupt.pabrtrace");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a pabr trace";
  }
  EXPECT_FALSE(read_trace(path).has_value());

  // Valid header, truncated record section.
  const std::string trunc = temp_path("truncated.pabrtrace");
  {
    TraceMeta meta;
    std::vector<TraceRecord> recs(4);
    ASSERT_TRUE(write_trace(trunc, meta, recs));
    std::ifstream in(trunc, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    bytes.resize(bytes.size() - 16);  // chop half a record
    std::ofstream out(trunc, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_FALSE(read_trace(trunc).has_value());
  std::remove(path.c_str());
  std::remove(trunc.c_str());
}

// The header is magic[8] | u32 version | ... — a file from a newer (or
// garbage) format version must be reported and refused, not parsed as
// garbage records.
TEST(TelemetryTraceTest, ReadRejectsUnknownFormatVersion) {
  const std::string path = temp_path("wrong_version.pabrtrace");
  {
    TraceMeta meta;
    ASSERT_TRUE(write_trace(path, meta, {make_record(1), make_record(2)}));
    std::fstream io(path,
                    std::ios::binary | std::ios::in | std::ios::out);
    io.seekp(8);  // the u32 version field follows the 8-byte magic
    const std::uint32_t bogus = 0x7fffffffu;
    io.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_FALSE(read_trace(path).has_value());
  std::remove(path.c_str());
}

// v2 carries an FNV-1a checksum over the record body: a flipped payload
// bit (framing intact, sizes unchanged) must be detected.
TEST(TelemetryTraceTest, ReadRejectsCorruptedRecordBody) {
  const std::string path = temp_path("flipped_body.pabrtrace");
  {
    TraceMeta meta;
    std::vector<TraceRecord> recs;
    for (std::uint64_t i = 0; i < 8; ++i) recs.push_back(make_record(i));
    ASSERT_TRUE(write_trace(path, meta, recs));
    std::ifstream in(path, std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();
    // Flip a bit inside the record body (well past the header, before
    // the trailing 8-byte checksum).
    bytes[bytes.size() - 24] = static_cast<char>(bytes[bytes.size() - 24] ^ 1);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
  }
  EXPECT_FALSE(read_trace(path).has_value());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pabr::telemetry
