// Line-level checks of the Fig. 6 estimation-time-window controller.
#include "reservation/test_window.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::reservation {
namespace {

TestWindowConfig paper_config() {
  TestWindowConfig cfg;
  cfg.phd_target = 0.01;  // W = 100
  cfg.t_start = 1.0;
  return cfg;
}

constexpr double kBigSojMax = 1000.0;

TEST(TestWindowTest, InitialState) {
  TestWindowController c(paper_config());
  EXPECT_DOUBLE_EQ(c.t_est(), 1.0);
  EXPECT_EQ(c.base_window(), 100u);
  EXPECT_EQ(c.window_size(), 100u);
  EXPECT_EQ(c.handoffs_in_window(), 0u);
  EXPECT_EQ(c.drops_in_window(), 0u);
}

TEST(TestWindowTest, WCeilingOfInverseTarget) {
  TestWindowConfig cfg;
  cfg.phd_target = 0.03;
  TestWindowController c(cfg);
  EXPECT_EQ(c.base_window(), 34u);  // ceil(1/0.03)
}

TEST(TestWindowTest, FirstDropGrowsTestAndWindow) {
  TestWindowController c(paper_config());
  // Quota in the first window is W_obs/W = 1: the first drop does NOT
  // exceed it (1 > 1 is false)... it must, per line 08, only react when
  // n_HD > quota. With n_HD = 1 and quota = 1, nothing happens.
  c.on_handoff(true, kBigSojMax);
  EXPECT_DOUBLE_EQ(c.t_est(), 1.0);
  EXPECT_EQ(c.window_size(), 100u);
  // The second drop exceeds the quota: T_est += 1, W_obs += W.
  c.on_handoff(true, kBigSojMax);
  EXPECT_DOUBLE_EQ(c.t_est(), 2.0);
  EXPECT_EQ(c.window_size(), 200u);
}

TEST(TestWindowTest, RepeatedDropsKeepPushing) {
  TestWindowController c(paper_config());
  for (int i = 0; i < 5; ++i) c.on_handoff(true, kBigSojMax);
  // Drops 2..5 each exceeded the growing quota (1, 2, 3, 4).
  EXPECT_DOUBLE_EQ(c.t_est(), 5.0);
  EXPECT_EQ(c.window_size(), 500u);
}

TEST(TestWindowTest, QuietWindowShrinksTest) {
  TestWindowConfig cfg = paper_config();
  cfg.t_start = 5.0;
  TestWindowController c(cfg);
  // 101 clean hand-offs: at the 101st, n_H > W_obs (100) and n_HD = 0 <
  // quota 1 -> T_est -= 1 and counters reset.
  for (int i = 0; i < 101; ++i) c.on_handoff(false, kBigSojMax);
  EXPECT_DOUBLE_EQ(c.t_est(), 4.0);
  EXPECT_EQ(c.window_size(), 100u);
  EXPECT_EQ(c.handoffs_in_window(), 0u);
  EXPECT_EQ(c.drops_in_window(), 0u);
}

TEST(TestWindowTest, ExactQuotaHoldsSteady) {
  TestWindowConfig cfg = paper_config();
  cfg.t_start = 5.0;
  TestWindowController c(cfg);
  // Exactly 1 drop in the 100-hand-off window: neither grows (1 > 1 is
  // false) nor shrinks (1 < 1 is false) -> T_est unchanged.
  c.on_handoff(true, kBigSojMax);
  for (int i = 0; i < 100; ++i) c.on_handoff(false, kBigSojMax);
  EXPECT_DOUBLE_EQ(c.t_est(), 5.0);
  // Counters were reset at window end.
  EXPECT_EQ(c.handoffs_in_window(), 0u);
}

TEST(TestWindowTest, TestNeverBelowMinimum) {
  TestWindowController c(paper_config());  // starts at the minimum, 1 s
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 101; ++i) c.on_handoff(false, kBigSojMax);
  }
  EXPECT_DOUBLE_EQ(c.t_est(), 1.0);
}

TEST(TestWindowTest, TestClampedByTSojMax) {
  TestWindowController c(paper_config());
  // T_soj,max = 3: T_est can reach 3 but not exceed it ("any value larger
  // than that is meaningless", §4.2).
  for (int i = 0; i < 50; ++i) c.on_handoff(true, 3.0);
  EXPECT_DOUBLE_EQ(c.t_est(), 3.0);
  // The window still grows (bookkeeping continues) even when clamped.
  EXPECT_GT(c.window_size(), 100u);
}

TEST(TestWindowTest, GrowingWindowRaisesDropQuota) {
  TestWindowController c(paper_config());
  // Push W_obs to 300 via two quota-exceeding drops.
  c.on_handoff(true, kBigSojMax);   // 1: quota 1, no change
  c.on_handoff(true, kBigSojMax);   // 2 > 1: W_obs = 200, T_est = 2
  c.on_handoff(true, kBigSojMax);   // 3 > 2: W_obs = 300, T_est = 3
  EXPECT_EQ(c.window_size(), 300u);
  // Now a 4th drop does not exceed quota 3 until n_HD reaches 4.
  c.on_handoff(true, kBigSojMax);   // n_HD = 4 > 3: grows again
  EXPECT_EQ(c.window_size(), 400u);
  EXPECT_DOUBLE_EQ(c.t_est(), 4.0);
}

TEST(TestWindowTest, WindowEndWithManyDropsStillResets) {
  TestWindowConfig cfg = paper_config();
  cfg.t_start = 10.0;
  TestWindowController c(cfg);
  // 2 drops -> W_obs = 200, T_est = 11. Then 199 clean hand-offs to pass
  // n_H = 201 > 200.
  c.on_handoff(true, kBigSojMax);
  c.on_handoff(true, kBigSojMax);
  EXPECT_DOUBLE_EQ(c.t_est(), 11.0);
  for (int i = 0; i < 199; ++i) c.on_handoff(false, kBigSojMax);
  // At window end n_HD = 2 == quota 2: not < quota, so no decrease; but
  // counters reset and W_obs returns to W.
  EXPECT_DOUBLE_EQ(c.t_est(), 11.0);
  EXPECT_EQ(c.window_size(), 100u);
  EXPECT_EQ(c.handoffs_in_window(), 0u);
}

TEST(TestWindowTest, ConfigValidation) {
  TestWindowConfig bad;
  bad.phd_target = 0.0;
  EXPECT_THROW(TestWindowController{bad}, InvariantError);
  TestWindowConfig bad2;
  bad2.phd_target = 1.5;
  EXPECT_THROW(TestWindowController{bad2}, InvariantError);
  TestWindowConfig bad3;
  bad3.t_start = 0.5;
  bad3.t_min = 1.0;
  EXPECT_THROW(TestWindowController{bad3}, InvariantError);
}

// Property sweep: under any mixed drop pattern, T_est stays within
// [t_min, max(t_start, T_soj,max rounded up)] and the counters never go
// negative (they are unsigned; the invariant is n_HD <= n_H <= W_obs).
class TestWindowPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TestWindowPropertyTest, InvariantsUnderRandomPatterns) {
  TestWindowController c(paper_config());
  unsigned seed = static_cast<unsigned>(GetParam());
  auto next = [&seed]() {
    seed = seed * 1664525u + 1013904223u;
    return seed;
  };
  for (int i = 0; i < 20000; ++i) {
    const bool dropped = (next() % 100) < 7;
    const double soj_max = 1.0 + static_cast<double>(next() % 80);
    c.on_handoff(dropped, soj_max);
    EXPECT_GE(c.t_est(), 1.0);
    EXPECT_LE(c.t_est(), 81.0);
    EXPECT_LE(c.drops_in_window(), c.handoffs_in_window());
    EXPECT_GE(c.window_size(), c.base_window());
    EXPECT_EQ(c.window_size() % c.base_window(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TestWindowPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 99));

}  // namespace
}  // namespace pabr::reservation
