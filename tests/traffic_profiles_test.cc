#include "traffic/profiles.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::traffic {
namespace {

TEST(DailyProfileTest, InterpolatesBetweenKnots) {
  DailyProfile p({{0.0, 10.0}, {12.0, 20.0}});
  EXPECT_DOUBLE_EQ(p.at_hour(0.0), 10.0);
  EXPECT_DOUBLE_EQ(p.at_hour(6.0), 15.0);
  EXPECT_DOUBLE_EQ(p.at_hour(12.0), 20.0);
}

TEST(DailyProfileTest, WrapsAcrossMidnight) {
  DailyProfile p({{0.0, 10.0}, {12.0, 20.0}});
  // From hour 12 (20.0) back around to hour 24 == 0 (10.0).
  EXPECT_DOUBLE_EQ(p.at_hour(18.0), 15.0);
  EXPECT_DOUBLE_EQ(p.at_hour(23.999), 10.0 + 0.001 / 12.0 * 10.0);
}

TEST(DailyProfileTest, ContinuousAtMidnightWrapPoint) {
  DailyProfile p({{0.0, 10.0}, {12.0, 20.0}});
  // Hours an epsilon either side of the wrap point agree with hour 0:
  // positive_fmod must map -1e-18 into [0, 24), not onto 24 itself.
  EXPECT_DOUBLE_EQ(p.at_hour(-1e-18), p.at_hour(0.0));
  EXPECT_NEAR(p.at_hour(24.0 - 1e-12), p.at_hour(0.0), 1e-9);
  EXPECT_DOUBLE_EQ(p.at_hour(-0.0), p.at_hour(0.0));
}

TEST(DailyProfileTest, PeriodicOverDays) {
  DailyProfile p({{0.0, 5.0}, {6.0, 50.0}, {18.0, 5.0}});
  for (double h : {3.0, 9.5, 20.0}) {
    EXPECT_NEAR(p.at_hour(h), p.at_hour(h + 24.0), 1e-12);
    EXPECT_NEAR(p.at(h * sim::kHour), p.at(h * sim::kHour + sim::kDay),
                1e-9);
  }
}

TEST(DailyProfileTest, SingleKnotIsConstant) {
  DailyProfile p({{8.0, 42.0}});
  EXPECT_DOUBLE_EQ(p.at_hour(0.0), 42.0);
  EXPECT_DOUBLE_EQ(p.at_hour(8.0), 42.0);
  EXPECT_DOUBLE_EQ(p.at_hour(23.0), 42.0);
}

TEST(DailyProfileTest, MinMaxValues) {
  DailyProfile p({{0.0, 5.0}, {6.0, 50.0}, {18.0, 10.0}});
  EXPECT_DOUBLE_EQ(p.max_value(), 50.0);
  EXPECT_DOUBLE_EQ(p.min_value(), 5.0);
}

TEST(DailyProfileTest, KnotsSortedAutomatically) {
  DailyProfile p({{12.0, 20.0}, {0.0, 10.0}});
  EXPECT_DOUBLE_EQ(p.at_hour(6.0), 15.0);
}

TEST(DailyProfileTest, Validation) {
  EXPECT_THROW(DailyProfile({}), InvariantError);
  EXPECT_THROW(DailyProfile({{24.0, 1.0}}), InvariantError);
  EXPECT_THROW(DailyProfile({{-1.0, 1.0}}), InvariantError);
  EXPECT_THROW(DailyProfile({{6.0, 1.0}, {6.0, 2.0}}), InvariantError);
}

TEST(PaperProfilesTest, LoadPeaksAtRushHours) {
  const auto load = paper_load_profile();
  // Rush-hour peaks (9:00, 17:30) clearly exceed off-peak (3:00).
  EXPECT_GT(load.at_hour(9.0), 2.0 * load.at_hour(3.0));
  EXPECT_GT(load.at_hour(17.5), 2.0 * load.at_hour(3.0));
  // Evening peak is the day's maximum.
  EXPECT_DOUBLE_EQ(load.max_value(), load.at_hour(17.5));
}

TEST(PaperProfilesTest, SpeedDipsAtRushHours) {
  const auto speed = paper_speed_profile();
  EXPECT_LT(speed.at_hour(9.0), speed.at_hour(3.0));
  EXPECT_LT(speed.at_hour(17.5), speed.at_hour(12.0) + 30.0);
  // Speeds stay positive with the paper's +/-20 sampling range.
  for (int h = 0; h < 24; ++h) {
    EXPECT_GT(speed.at_hour(static_cast<double>(h)) -
                  kPaperSpeedHalfRange,
              0.0)
        << "hour " << h;
  }
}

TEST(PaperProfilesTest, LoadAndSpeedAntiCorrelateAtPeaks) {
  const auto load = paper_load_profile();
  const auto speed = paper_speed_profile();
  // §5.3: "the offered load peaks during rush hours ... at low speeds".
  EXPECT_DOUBLE_EQ(speed.min_value(), speed.at_hour(9.0));
  EXPECT_GT(load.at_hour(9.0), load.at_hour(11.0));
  EXPECT_LT(speed.at_hour(9.0), speed.at_hour(11.0));
}

}  // namespace
}  // namespace pabr::traffic
