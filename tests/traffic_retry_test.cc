#include "traffic/retry.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::traffic {
namespace {

RetryPolicy enabled_policy(std::uint64_t seed = 1) {
  RetryConfig cfg;
  cfg.enabled = true;
  return RetryPolicy(cfg, sim::Rng(seed));
}

TEST(RetryTest, PaperProbabilityLadder) {
  auto p = enabled_policy();
  // 1 - 0.1 * N_ret with N_ret = attempts made so far.
  EXPECT_DOUBLE_EQ(p.retry_probability(1), 0.9);
  EXPECT_DOUBLE_EQ(p.retry_probability(2), 0.8);
  EXPECT_DOUBLE_EQ(p.retry_probability(5), 0.5);
  EXPECT_DOUBLE_EQ(p.retry_probability(9), 0.1);
  EXPECT_DOUBLE_EQ(p.retry_probability(10), 0.0);
  EXPECT_DOUBLE_EQ(p.retry_probability(15), 0.0);
}

TEST(RetryTest, DisabledNeverRetries) {
  RetryConfig cfg;  // enabled = false
  RetryPolicy p(cfg, sim::Rng(1));
  EXPECT_FALSE(p.enabled());
  EXPECT_DOUBLE_EQ(p.retry_probability(1), 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.should_retry(1));
}

TEST(RetryTest, WaitIsFiveSecondsByDefault) {
  auto p = enabled_policy();
  EXPECT_DOUBLE_EQ(p.wait(), 5.0);
}

TEST(RetryTest, TenthAttemptAlwaysGivesUp) {
  auto p = enabled_policy();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.should_retry(10));
}

TEST(RetryTest, FirstAttemptRetriesAboutNinetyPercent) {
  auto p = enabled_policy(7);
  int retried = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (p.should_retry(1)) ++retried;
  }
  EXPECT_NEAR(static_cast<double>(retried) / n, 0.9, 0.01);
}

TEST(RetryTest, AttemptCounterIsOneBased) {
  auto p = enabled_policy();
  EXPECT_THROW(p.retry_probability(0), InvariantError);
}

TEST(RetryTest, CustomGiveupStep) {
  RetryConfig cfg;
  cfg.enabled = true;
  cfg.giveup_step = 0.5;
  RetryPolicy p(cfg, sim::Rng(1));
  EXPECT_DOUBLE_EQ(p.retry_probability(1), 0.5);
  EXPECT_DOUBLE_EQ(p.retry_probability(2), 0.0);
}

}  // namespace
}  // namespace pabr::traffic
