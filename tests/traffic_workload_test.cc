#include "traffic/workload.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/check.h"

namespace pabr::traffic {
namespace {

TEST(WorkloadConfigTest, MeanBandwidthMixesVoiceAndVideo) {
  WorkloadConfig c;
  c.voice_ratio = 1.0;
  EXPECT_DOUBLE_EQ(c.mean_bandwidth(), 1.0);
  c.voice_ratio = 0.0;
  EXPECT_DOUBLE_EQ(c.mean_bandwidth(), 4.0);
  c.voice_ratio = 0.5;
  EXPECT_DOUBLE_EQ(c.mean_bandwidth(), 2.5);
}

TEST(WorkloadConfigTest, OfferedLoadMatchesEq7) {
  WorkloadConfig c;
  c.voice_ratio = 1.0;
  c.arrival_rate_per_cell = 100.0 / 120.0;  // should give L = 100
  EXPECT_NEAR(c.offered_load(), 100.0, 1e-9);
}

TEST(ArrivalRateTest, InvertsEq7) {
  for (double load : {60.0, 100.0, 180.0, 300.0}) {
    for (double rvo : {1.0, 0.8, 0.5}) {
      const double lambda = arrival_rate_for_load(load, rvo);
      WorkloadConfig c;
      c.voice_ratio = rvo;
      c.arrival_rate_per_cell = lambda;
      EXPECT_NEAR(c.offered_load(), load, 1e-9)
          << "load " << load << " rvo " << rvo;
    }
  }
}

TEST(ArrivalRateTest, PaperExampleVoiceOnly) {
  // L = 300, R_vo = 1: lambda = 300 / 120 = 2.5 connections/s/cell.
  EXPECT_NEAR(arrival_rate_for_load(300.0, 1.0), 2.5, 1e-12);
}

TEST(ArrivalRateTest, ValidatesInputs) {
  EXPECT_THROW(arrival_rate_for_load(-1.0, 1.0), pabr::InvariantError);
  EXPECT_THROW(arrival_rate_for_load(100.0, 1.5), pabr::InvariantError);
  EXPECT_THROW(arrival_rate_for_load(100.0, 1.0, 0.0), pabr::InvariantError);
}

class WorkloadGeneratorTest : public ::testing::Test {
 protected:
  WorkloadGenerator make(WorkloadConfig cfg, std::uint64_t seed = 1) {
    return WorkloadGenerator(road_, cfg, sim::Rng(seed));
  }
  geom::LinearTopology road_{10, 1.0, true};
};

TEST_F(WorkloadGeneratorTest, RequestFieldsWithinModelRanges) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;
  cfg.voice_ratio = 0.5;
  cfg.speed_min_kmh = 80.0;
  cfg.speed_max_kmh = 120.0;
  auto gen = make(cfg);
  bool saw_voice = false;
  bool saw_video = false;
  bool saw_fwd = false;
  bool saw_back = false;
  for (int i = 0; i < 2000; ++i) {
    const auto req = gen.make_request(100.0);
    EXPECT_GE(req.position_km, 0.0);
    EXPECT_LT(req.position_km, 10.0);
    EXPECT_EQ(req.cell, road_.cell_at(req.position_km));
    EXPECT_GE(req.speed_kmh, 80.0);
    EXPECT_LT(req.speed_kmh, 120.0);
    EXPECT_GT(req.lifetime_s, 0.0);
    EXPECT_EQ(req.attempt, 1);
    saw_voice |= req.service == ServiceClass::kVoice;
    saw_video |= req.service == ServiceClass::kVideo;
    saw_fwd |= req.direction == +1;
    saw_back |= req.direction == -1;
  }
  EXPECT_TRUE(saw_voice && saw_video && saw_fwd && saw_back);
}

TEST_F(WorkloadGeneratorTest, IdsAreUniqueAndIncreasing) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;
  auto gen = make(cfg);
  ConnectionId last = 0;
  for (int i = 0; i < 100; ++i) {
    const auto req = gen.make_request(1.0);
    EXPECT_GT(req.id, last);
    last = req.id;
  }
}

TEST_F(WorkloadGeneratorTest, UnidirectionalMode) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;
  cfg.bidirectional = false;
  auto gen = make(cfg);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(gen.make_request(1.0).direction, +1);
  }
}

TEST_F(WorkloadGeneratorTest, VoiceRatioOneMeansAllVoice) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;
  cfg.voice_ratio = 1.0;
  auto gen = make(cfg);
  for (int i = 0; i < 500; ++i) {
    const auto req = gen.make_request(1.0);
    EXPECT_EQ(req.service, ServiceClass::kVoice);
    EXPECT_EQ(req.bandwidth(), kVoiceBandwidth);
  }
}

TEST_F(WorkloadGeneratorTest, ArrivalRateStatisticallyCorrect) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 0.5;  // system rate = 5 /s over 10 cells
  auto gen = make(cfg, 7);
  sim::Time t = 0.0;
  int count = 0;
  while (t < 10000.0) {
    t = gen.next_arrival_after(t);
    ++count;
  }
  EXPECT_NEAR(static_cast<double>(count) / 10000.0, 5.0, 0.15);
}

TEST_F(WorkloadGeneratorTest, ZeroRateNeverArrives) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 0.0;
  auto gen = make(cfg);
  EXPECT_TRUE(std::isinf(gen.next_arrival_after(0.0)));
}

TEST_F(WorkloadGeneratorTest, RateScaleThinsArrivals) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;  // envelope: 10 /s
  auto gen = make(cfg, 11);
  gen.set_rate_scale([](sim::Time) { return 0.25; }, 1.0);
  sim::Time t = 0.0;
  int count = 0;
  while (t < 4000.0) {
    t = gen.next_arrival_after(t);
    ++count;
  }
  // Effective rate 2.5 /s.
  EXPECT_NEAR(static_cast<double>(count) / 4000.0, 2.5, 0.12);
}

TEST_F(WorkloadGeneratorTest, RateScaleEscapingEnvelopeThrows) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;
  auto gen = make(cfg);
  gen.set_rate_scale([](sim::Time) { return 2.0; }, 1.0);
  EXPECT_THROW(gen.next_arrival_after(0.0), pabr::InvariantError);
}

TEST_F(WorkloadGeneratorTest, SpeedRangeOverrideApplies) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;
  auto gen = make(cfg);
  gen.set_speed_range(
      [](sim::Time) { return std::pair<double, double>{30.0, 35.0}; });
  for (int i = 0; i < 200; ++i) {
    const auto req = gen.make_request(1.0);
    EXPECT_GE(req.speed_kmh, 30.0);
    EXPECT_LT(req.speed_kmh, 35.0);
  }
}

TEST_F(WorkloadGeneratorTest, LifetimeMeanApproximately120) {
  WorkloadConfig cfg;
  cfg.arrival_rate_per_cell = 1.0;
  auto gen = make(cfg, 13);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += gen.make_request(1.0).lifetime_s;
  EXPECT_NEAR(sum / n, 120.0, 4.0);
}

TEST_F(WorkloadGeneratorTest, ConfigValidation) {
  WorkloadConfig bad;
  bad.arrival_rate_per_cell = -1.0;
  EXPECT_THROW(make(bad), pabr::InvariantError);
  WorkloadConfig bad2;
  bad2.voice_ratio = 2.0;
  EXPECT_THROW(make(bad2), pabr::InvariantError);
  WorkloadConfig bad3;
  bad3.speed_min_kmh = 50.0;
  bad3.speed_max_kmh = 40.0;
  EXPECT_THROW(make(bad3), pabr::InvariantError);
}

}  // namespace
}  // namespace pabr::traffic
