// util::Arena — the bump store behind estimator snapshots (DESIGN.md
// §11). Two contracts matter: index-based spans survive reallocation
// (unlike pointers), and reset() keeps capacity so warm rebuilds never
// touch the allocator. The estimator-level test proves snapshot arenas
// reused across many rebuilds answer bitwise identically to a fresh
// estimator that never reused anything.
#include "util/arena.h"

#include <gtest/gtest.h>

#include <vector>

#include "hoef/estimator.h"
#include "hoef/quadruplet.h"
#include "sim/time.h"

namespace pabr {
namespace {

TEST(ArenaTest, SpansSurviveReallocation) {
  util::Arena<int> a;
  const auto m0 = a.mark();
  for (int i = 0; i < 4; ++i) a.push_back(i);
  const util::ArenaSpan first = a.span_from(m0);
  // Push enough to force at least one reallocation of the backing vector.
  const auto m1 = a.mark();
  for (int i = 0; i < 10000; ++i) a.push_back(100 + i);
  const util::ArenaSpan second = a.span_from(m1);
  // Index spans still resolve to the right elements post-reallocation.
  ASSERT_EQ(first.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.begin(first)[i], i);
  ASSERT_EQ(second.size(), 10000u);
  EXPECT_EQ(*a.begin(second), 100);
  EXPECT_EQ(a.end(second)[-1], 100 + 9999);
}

TEST(ArenaTest, ResetKeepsCapacityAndStorage) {
  util::Arena<double> a;
  for (int i = 0; i < 1000; ++i) a.push_back(static_cast<double>(i));
  const std::size_t cap = a.capacity();
  const double* storage = a.data();
  a.reset();
  EXPECT_EQ(a.size(), 0u);
  EXPECT_EQ(a.capacity(), cap);
  // Refills within capacity reuse the exact same allocation.
  for (int i = 0; i < 1000; ++i) a.push_back(static_cast<double>(-i));
  EXPECT_EQ(a.data(), storage);
  EXPECT_EQ(a.begin(util::ArenaSpan{0, 3})[2], -2.0);
}

TEST(ArenaTest, MarksDelimitAdjacentRuns) {
  util::Arena<int> a;
  std::vector<util::ArenaSpan> runs;
  for (int run = 0; run < 5; ++run) {
    const auto m = a.mark();
    for (int i = 0; i <= run; ++i) a.push_back(run * 100 + i);
    runs.push_back(a.span_from(m));
  }
  EXPECT_EQ(a.size(), 1u + 2 + 3 + 4 + 5);
  for (std::size_t run = 0; run < 5; ++run) {
    ASSERT_EQ(runs[run].size(), static_cast<std::uint32_t>(run + 1));
    const int* p = a.begin(runs[run]);
    for (std::size_t i = 0; i <= run; ++i) {
      EXPECT_EQ(p[i], static_cast<int>(run * 100 + i));
    }
  }
  EXPECT_TRUE(util::ArenaSpan{}.empty());
}

TEST(ArenaTest, EstimatorSnapshotReuseIsBitwiseClean) {
  // Force a snapshot rebuild per query round (each record invalidates
  // it). The long-lived estimator reuses its snapshot arenas dozens of
  // times; the throwaway estimator rebuilt from scratch each round never
  // reuses anything. Every probability must match bit for bit.
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  cfg.n_quad = 20;
  hoef::HandoffEstimator warm(0, cfg);
  std::vector<hoef::Quadruplet> events;
  sim::Time t = 0.0;
  const geom::CellId prevs[] = {0, 1, 2};
  const geom::CellId nexts[] = {1, 2, 3};
  for (int i = 0; i < 60; ++i) {
    t += 2.5;
    const hoef::Quadruplet q{t, prevs[i % 3], nexts[(i * 5) % 3],
                             1.0 + 0.37 * ((i * 7) % 50)};
    events.push_back(q);
    warm.record(q);

    hoef::HandoffEstimator fresh(0, cfg);
    for (const hoef::Quadruplet& e : events) fresh.record(e);
    for (geom::CellId prev : prevs) {
      for (geom::CellId next : nexts) {
        for (double soj = 0.0; soj < 20.0; soj += 4.3) {
          EXPECT_EQ(warm.handoff_probability(t, prev, next, soj, 30.0),
                    fresh.handoff_probability(t, prev, next, soj, 30.0))
              << "round " << i << " prev " << prev << " next " << next
              << " sojourn " << soj;
        }
      }
      EXPECT_EQ(warm.any_handoff_probability(t, prev, 3.0, 30.0),
                fresh.any_handoff_probability(t, prev, 3.0, 30.0));
      // Footprints walk the raw per-next arena spans.
      const auto wf = warm.footprint(t, prev);
      const auto ff = fresh.footprint(t, prev);
      ASSERT_EQ(wf.size(), ff.size());
      for (std::size_t k = 0; k < wf.size(); ++k) {
        EXPECT_EQ(wf[k].next, ff[k].next);
        EXPECT_EQ(wf[k].sojourn, ff[k].sojourn);
        EXPECT_EQ(wf[k].weight, ff[k].weight);
        EXPECT_EQ(wf[k].window, ff[k].window);
      }
    }
    EXPECT_EQ(warm.max_sojourn(t), fresh.max_sojourn(t));
  }
  EXPECT_NO_THROW(warm.audit());
}

}  // namespace
}  // namespace pabr
