#include "util/ascii_plot.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/check.h"

namespace pabr::plot {
namespace {

TEST(AsciiPlotTest, EmptyDataSaysSo) {
  Canvas c;
  EXPECT_EQ(scatter({}, c), "(no data)\n");
}

TEST(AsciiPlotTest, SinglePointRenders) {
  Canvas c;
  const std::string out = scatter({{1.0, 2.0, '*'}}, c);
  EXPECT_NE(out.find('*'), std::string::npos);
  EXPECT_NE(out.find('|'), std::string::npos);
  EXPECT_NE(out.find('+'), std::string::npos);
}

TEST(AsciiPlotTest, ExtremePointsLandOnCorners) {
  Canvas c;
  c.width = 20;
  c.height = 5;
  const std::string out =
      scatter({{0.0, 0.0, 'a'}, {10.0, 10.0, 'b'}}, c);
  // 'b' (max x, max y) must be in the first plot row at the right edge;
  // 'a' in the last plot row at the left edge.
  std::vector<std::string> lines;
  std::string line;
  for (char ch : out) {
    if (ch == '\n') {
      lines.push_back(line);
      line.clear();
    } else {
      line += ch;
    }
  }
  ASSERT_GE(lines.size(), 5u);
  EXPECT_NE(lines[0].find('b'), std::string::npos);
  // Row with 'a' is the last grid row (height-1 = index 4).
  EXPECT_NE(lines[4].find('a'), std::string::npos);
  EXPECT_LT(lines[4].find('a'), lines[0].find('b'));
}

TEST(AsciiPlotTest, AxisLabelsAppear) {
  Canvas c;
  c.x_label = "time (s)";
  c.y_label = "T_est";
  const std::string out = scatter({{0.0, 1.0, '*'}, {1.0, 2.0, '*'}}, c);
  EXPECT_NE(out.find("time (s)"), std::string::npos);
  EXPECT_NE(out.find("T_est"), std::string::npos);
}

TEST(AsciiPlotTest, RangeNumbersPrinted) {
  Canvas c;
  const std::string out =
      scatter({{5.0, 10.0, '*'}, {15.0, 30.0, '*'}}, c);
  EXPECT_NE(out.find("30"), std::string::npos);  // y max
  EXPECT_NE(out.find("10"), std::string::npos);  // y min
  EXPECT_NE(out.find("15"), std::string::npos);  // x max
}

TEST(AsciiPlotTest, DegenerateRangesHandled) {
  Canvas c;
  // All points identical: ranges are synthetically widened, no crash.
  const std::string out =
      scatter({{3.0, 7.0, '*'}, {3.0, 7.0, '*'}}, c);
  EXPECT_NE(out.find('*'), std::string::npos);
}

TEST(AsciiPlotTest, TooSmallCanvasRejected) {
  Canvas c;
  c.width = 2;
  EXPECT_THROW(scatter({{0, 0, '*'}}, c), InvariantError);
}

TEST(AsciiPlotTest, StaircaseHoldsValuesBetweenSamples) {
  Canvas c;
  c.width = 40;
  c.height = 8;
  // One series stepping 1 -> 5 halfway.
  const std::string out = staircase(
      {{{0.0, 1.0, '#'}, {5.0, 1.0, '#'}, {5.0, 5.0, '#'}, {10.0, 5.0, '#'}}},
      c);
  // The held run must paint many '#' (densified), not just 4.
  const auto count =
      static_cast<std::size_t>(std::count(out.begin(), out.end(), '#'));
  EXPECT_GT(count, 10u);
}

TEST(AsciiPlotTest, MultipleSeriesKeepGlyphs) {
  Canvas c;
  const std::string out = staircase(
      {{{0.0, 1.0, 'x'}, {10.0, 1.0, 'x'}},
       {{0.0, 2.0, 'o'}, {10.0, 2.0, 'o'}}},
      c);
  EXPECT_NE(out.find('x'), std::string::npos);
  EXPECT_NE(out.find('o'), std::string::npos);
}

}  // namespace
}  // namespace pabr::plot
