#include "util/check.h"

#include <gtest/gtest.h>

namespace pabr {
namespace {

TEST(CheckTest, PassingConditionDoesNothing) {
  EXPECT_NO_THROW(PABR_CHECK(1 + 1 == 2, "math works"));
  EXPECT_NO_THROW(PABR_CHECK_OK(true));
}

TEST(CheckTest, FailingConditionThrowsInvariantError) {
  EXPECT_THROW(PABR_CHECK(false, "boom"), InvariantError);
  EXPECT_THROW(PABR_CHECK_OK(false), InvariantError);
}

TEST(CheckTest, MessageContainsExpressionFileAndText) {
  try {
    PABR_CHECK(2 < 1, "two is not less than one");
    FAIL() << "expected a throw";
  } catch (const InvariantError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
    EXPECT_NE(what.find("util_check_test"), std::string::npos) << what;
    EXPECT_NE(what.find("two is not less than one"), std::string::npos)
        << what;
  }
}

TEST(CheckTest, InvariantErrorIsLogicError) {
  EXPECT_THROW(PABR_CHECK(false, ""), std::logic_error);
}

TEST(CheckTest, ConditionEvaluatedExactlyOnce) {
  int calls = 0;
  auto counted = [&calls]() {
    ++calls;
    return true;
  };
  PABR_CHECK(counted(), "side effect");
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace pabr
