#include "util/cli.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::cli {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v{"prog"};
  v.insert(v.end(), args.begin(), args.end());
  return v;
}

TEST(CliTest, ParsesEqualsForm) {
  Parser p("t", "test");
  double load = 0.0;
  int n = 0;
  std::string s;
  p.add_double("load", &load, "");
  p.add_int("n", &n, "");
  p.add_string("name", &s, "");
  auto args = argv_of({"--load=123.5", "--n=-7", "--name=ring"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(load, 123.5);
  EXPECT_EQ(n, -7);
  EXPECT_EQ(s, "ring");
}

TEST(CliTest, ParsesSpaceSeparatedForm) {
  Parser p("t", "test");
  double load = 0.0;
  p.add_double("load", &load, "");
  auto args = argv_of({"--load", "60"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(load, 60.0);
}

TEST(CliTest, BareBooleanSetsTrue) {
  Parser p("t", "test");
  bool full = false;
  p.add_bool("full", &full, "");
  auto args = argv_of({"--full"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(full);
}

TEST(CliTest, BooleanAcceptsExplicitValues) {
  Parser p("t", "test");
  bool a = false;
  bool b = true;
  p.add_bool("a", &a, "");
  p.add_bool("b", &b, "");
  auto args = argv_of({"--a=true", "--b=false"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_TRUE(a);
  EXPECT_FALSE(b);
}

TEST(CliTest, UnknownFlagFails) {
  Parser p("t", "test");
  auto args = argv_of({"--nope=1"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, BadNumberFails) {
  Parser p("t", "test");
  int n = 0;
  p.add_int("n", &n, "");
  auto args = argv_of({"--n=twelve"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, MissingValueFails) {
  Parser p("t", "test");
  double x = 0.0;
  p.add_double("x", &x, "");
  auto args = argv_of({"--x"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, HelpReturnsFalseAndRendersFlags) {
  Parser p("t", "my tool");
  double x = 1.5;
  p.add_double("xray", &x, "an x value");
  auto args = argv_of({"--help"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
  const std::string usage = p.usage();
  EXPECT_NE(usage.find("xray"), std::string::npos);
  EXPECT_NE(usage.find("an x value"), std::string::npos);
  EXPECT_NE(usage.find("1.5"), std::string::npos);  // default
}

TEST(CliTest, PositionalArgumentsCollected) {
  Parser p("t", "test");
  bool v = false;
  p.add_bool("v", &v, "");
  auto args = argv_of({"input.csv", "--v", "more"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  ASSERT_EQ(p.positional().size(), 2u);
  EXPECT_EQ(p.positional()[0], "input.csv");
  EXPECT_EQ(p.positional()[1], "more");
}

TEST(CliTest, RepeatedFlagEqualsFormFails) {
  Parser p("t", "test");
  double load = 0.0;
  p.add_double("load", &load, "");
  auto args = argv_of({"--load=60", "--load=80"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, RepeatedFlagSplitFormFails) {
  Parser p("t", "test");
  int n = 0;
  p.add_int("n", &n, "");
  auto args = argv_of({"--n", "1", "--n", "2"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, RepeatedFlagAcrossFormsFails) {
  // The `--name=value` and split `--name value` spellings name the same
  // flag; mixing them is still a repeat.
  Parser p("t", "test");
  double x = 0.0;
  p.add_double("x", &x, "");
  auto args = argv_of({"--x=1.5", "--x", "2.5"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, RepeatedBareBooleanFails) {
  Parser p("t", "test");
  bool full = false;
  p.add_bool("full", &full, "");
  auto args = argv_of({"--full", "--full"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, RepeatedUnknownFlagStillReportsUnknown) {
  // Unknown-flag detection has priority over repeat detection.
  Parser p("t", "test");
  auto args = argv_of({"--nope=1", "--nope=2"});
  EXPECT_FALSE(p.parse(static_cast<int>(args.size()), args.data()));
}

TEST(CliTest, DistinctFlagsAllAssignOnce) {
  Parser p("t", "test");
  double load = 0.0;
  bool full = false;
  std::string out;
  p.add_double("load", &load, "");
  p.add_bool("full", &full, "");
  p.add_string("out", &out, "");
  auto args = argv_of({"--load", "88.5", "--full", "--out=r.csv"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_DOUBLE_EQ(load, 88.5);
  EXPECT_TRUE(full);
  EXPECT_EQ(out, "r.csv");
}

TEST(CliTest, DuplicateFlagRegistrationThrows) {
  Parser p("t", "test");
  int a = 0;
  int b = 0;
  p.add_int("n", &a, "");
  EXPECT_THROW(p.add_int("n", &b, ""), InvariantError);
}

TEST(CliTest, Uint64RoundTrip) {
  Parser p("t", "test");
  unsigned long long seed = 0;
  p.add_uint64("seed", &seed, "");
  auto args = argv_of({"--seed=18446744073709551615"});
  ASSERT_TRUE(p.parse(static_cast<int>(args.size()), args.data()));
  EXPECT_EQ(seed, 18446744073709551615ULL);
}

}  // namespace
}  // namespace pabr::cli
