#include "util/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace pabr::csv {
namespace {

TEST(CsvEscapeTest, PlainFieldUntouched) {
  EXPECT_EQ(escape("hello"), "hello");
  EXPECT_EQ(escape(""), "");
  EXPECT_EQ(escape("1.5e-3"), "1.5e-3");
}

TEST(CsvEscapeTest, CommaTriggersQuoting) {
  EXPECT_EQ(escape("a,b"), "\"a,b\"");
}

TEST(CsvEscapeTest, EmbeddedQuoteDoubled) {
  EXPECT_EQ(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscapeTest, NewlineTriggersQuoting) {
  EXPECT_EQ(escape("a\nb"), "\"a\nb\"");
  EXPECT_EQ(escape("a\rb"), "\"a\rb\"");
}

TEST(CsvJoinTest, JoinsAndEscapes) {
  EXPECT_EQ(join({"a", "b,c", "d"}), "a,\"b,c\",d");
  EXPECT_EQ(join({}), "");
  EXPECT_EQ(join({"only"}), "only");
}

TEST(CsvWriterTest, InactiveWriterIsSafeNoOp) {
  Writer w;
  EXPECT_FALSE(w.active());
  w.header({"a", "b"});
  w.row({"1", "2"});
  w.row_values(1, 2.5, "x");
}

TEST(CsvWriterTest, WritesRowsToFile) {
  const std::string path = testing::TempDir() + "/pabr_csv_test.csv";
  {
    Writer w(path);
    ASSERT_TRUE(w.active());
    w.header({"load", "pcb", "label"});
    w.row_values(100, 0.25, "ac3");
  }
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "load,pcb,label\n100,0.25,ac3\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, DoubleFormatKeepsPrecision) {
  EXPECT_EQ(Writer::format(0.5), "0.5");
  EXPECT_EQ(Writer::format(std::string("s")), "s");
  // 10 significant digits survive the round trip.
  const double v = 0.0123456789;
  EXPECT_NEAR(std::stod(Writer::format(v)), v, 1e-12);
}

}  // namespace
}  // namespace pabr::csv
