// util::FlatMap — the sorted-vector map replacing std::map on the
// estimator hot path (DESIGN.md §11). The load-bearing property is that
// iteration visits keys in EXACTLY std::map's order: snapshot builds and
// audits accumulate floats in iteration order, so any ordering drift
// would change output bits.
#include "util/flat_map.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

namespace pabr {
namespace {

TEST(FlatMapTest, IterationMatchesStdMapOrder) {
  // Insert in scrambled order; both maps must agree entry-for-entry.
  const int keys[] = {7, 1, 12, 3, 9, 0, 5, 11, 2};
  util::FlatMap<int, int> flat;
  std::map<int, int> ref;
  for (int k : keys) {
    flat.find_or_insert(k) = 10 * k;
    ref[k] = 10 * k;
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(fit->first, k);
    EXPECT_EQ(fit->second, v);
    ++fit;
  }
}

TEST(FlatMapTest, FindOrInsertDefaultConstructsOnce) {
  util::FlatMap<int, std::string> m;
  EXPECT_TRUE(m.empty());
  std::string& s = m.find_or_insert(4);
  EXPECT_TRUE(s.empty());  // default-constructed, like std::map::operator[]
  s = "four";
  EXPECT_EQ(m.find_or_insert(4), "four");  // no overwrite on re-probe
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMapTest, FindAndContains) {
  util::FlatMap<int, int> m;
  for (int k : {2, 4, 6}) m.find_or_insert(k) = k * k;
  EXPECT_TRUE(m.contains(4));
  EXPECT_FALSE(m.contains(3));
  EXPECT_EQ(m.find(6)->second, 36);
  EXPECT_EQ(m.find(5), m.end());
  const util::FlatMap<int, int>& cm = m;
  EXPECT_EQ(cm.find(2)->second, 4);
  EXPECT_EQ(cm.find(7), cm.end());
}

TEST(FlatMapTest, EraseKeepsOrder) {
  util::FlatMap<int, int> m;
  for (int k : {1, 3, 5, 7}) m.find_or_insert(k) = k;
  m.erase(m.find(5));
  EXPECT_EQ(m.size(), 3u);
  EXPECT_FALSE(m.contains(5));
  std::vector<int> seen;
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 7}));
  // Reinsert lands back in sorted position.
  m.find_or_insert(5) = 50;
  seen.clear();
  for (const auto& [k, v] : m) seen.push_back(k);
  EXPECT_EQ(seen, (std::vector<int>{1, 3, 5, 7}));
}

TEST(FlatMapTest, RandomizedParityWithStdMap) {
  util::FlatMap<int, int> flat;
  std::map<int, int> ref;
  // Deterministic pseudo-random walk of inserts, overwrites and erases.
  unsigned state = 12345;
  auto next = [&state] { return state = state * 1103515245u + 12345u; };
  for (int step = 0; step < 500; ++step) {
    const int key = static_cast<int>(next() % 40u);
    switch (next() % 3u) {
      case 0:
      case 1:
        flat.find_or_insert(key) = step;
        ref[key] = step;
        break;
      default:
        if (auto it = flat.find(key); it != flat.end()) flat.erase(it);
        ref.erase(key);
        break;
    }
  }
  ASSERT_EQ(flat.size(), ref.size());
  auto fit = flat.begin();
  for (const auto& [k, v] : ref) {
    EXPECT_EQ(fit->first, k);
    EXPECT_EQ(fit->second, v);
    ++fit;
  }
}

}  // namespace
}  // namespace pabr
