// Thread-safety of the leveled logger (util/log.h): whole-line atomicity
// under concurrent writers, level filtering, and sink capture/restore.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "util/log.h"

namespace pabr {
namespace {

/// Captures logger output for one test and restores stderr + the previous
/// level on destruction. The sink runs under the logger mutex, so the
/// vector needs no extra lock for writes; readers must join threads first.
class CaptureSink {
 public:
  CaptureSink() : saved_level_(log::level()) {
    log::set_sink([this](log::Level lvl, const std::string& msg) {
      lines_.emplace_back(lvl, msg);
    });
  }
  ~CaptureSink() {
    log::set_sink(nullptr);
    log::set_level(saved_level_);
  }

  const std::vector<std::pair<log::Level, std::string>>& lines() const {
    return lines_;
  }

 private:
  log::Level saved_level_;
  std::vector<std::pair<log::Level, std::string>> lines_;
};

TEST(UtilLogTest, LevelFilteringDropsBelowThreshold) {
  CaptureSink capture;
  log::set_level(log::Level::kWarn);
  PABR_DEBUG << "dropped";
  PABR_INFO << "dropped too";
  PABR_WARN << "kept";
  PABR_ERROR << "kept " << 2;
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_EQ(capture.lines()[0].first, log::Level::kWarn);
  EXPECT_EQ(capture.lines()[0].second, "kept");
  EXPECT_EQ(capture.lines()[1].second, "kept 2");
}

TEST(UtilLogTest, OffSilencesEverything) {
  CaptureSink capture;
  log::set_level(log::Level::kOff);
  PABR_ERROR << "silenced";
  EXPECT_TRUE(capture.lines().empty());
}

TEST(UtilLogTest, SetLevelByNameParsesAndRejects) {
  const log::Level saved = log::level();
  EXPECT_TRUE(log::set_level_by_name("DEBUG"));
  EXPECT_EQ(log::level(), log::Level::kDebug);
  EXPECT_TRUE(log::set_level_by_name("off"));
  EXPECT_EQ(log::level(), log::Level::kOff);
  EXPECT_FALSE(log::set_level_by_name("verbose"));
  EXPECT_EQ(log::level(), log::Level::kOff);  // untouched on failure
  log::set_level(saved);
}

TEST(UtilLogTest, ConcurrentWritersEmitWholeLines) {
  CaptureSink capture;
  log::set_level(log::Level::kInfo);

  constexpr int kThreads = 8;
  constexpr int kLinesPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLinesPerThread; ++i) {
        // Multiple << pieces so a torn line would be detectable.
        PABR_INFO << "thread=" << t << " line=" << i << " tail=ok";
      }
    });
  }
  for (auto& th : threads) th.join();

  ASSERT_EQ(capture.lines().size(),
            static_cast<std::size_t>(kThreads * kLinesPerThread));
  std::vector<int> per_thread(kThreads, 0);
  for (const auto& [lvl, msg] : capture.lines()) {
    EXPECT_EQ(lvl, log::Level::kInfo);
    // Every captured line must be one intact message, never interleaved.
    int t = -1, i = -1;
    ASSERT_EQ(std::sscanf(msg.c_str(), "thread=%d line=%d tail=ok", &t, &i),
              2)
        << "torn line: " << msg;
    ASSERT_GE(t, 0);
    ASSERT_LT(t, kThreads);
    ++per_thread[static_cast<std::size_t>(t)];
  }
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[static_cast<std::size_t>(t)], kLinesPerThread);
  }
}

TEST(UtilLogTest, SinkRestoreReturnsOutputToStderr) {
  {
    CaptureSink capture;
    log::set_level(log::Level::kError);
    PABR_ERROR << "captured";
    EXPECT_EQ(capture.lines().size(), 1u);
  }
  // After restore, writing must not crash (goes to stderr again).
  log::write(log::Level::kError, "post-restore stderr line (expected)");
}

}  // namespace
}  // namespace pabr
