#include "util/mathx.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/check.h"

namespace pabr::mathx {
namespace {

TEST(MathxTest, MeanOfEmptyIsZero) { EXPECT_DOUBLE_EQ(mean({}), 0.0); }

TEST(MathxTest, MeanBasic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(MathxTest, VarianceUnbiased) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  // Known data set: population variance 4, sample variance 32/7.
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(MathxTest, VarianceNeedsTwoSamples) {
  const std::vector<double> one{42.0};
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
}

TEST(MathxTest, PercentileEndpointsAndMedian) {
  const std::vector<double> xs{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 25.0);  // interpolated
}

TEST(MathxTest, PercentileUnsortedInput) {
  const std::vector<double> xs{30.0, 10.0, 40.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
}

TEST(MathxTest, PercentileRangeChecked) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(percentile(xs, -1.0), InvariantError);
  EXPECT_THROW(percentile(xs, 101.0), InvariantError);
}

TEST(MathxTest, Ci95ShrinksWithSamples) {
  std::vector<double> small(10, 0.0);
  std::vector<double> large(1000, 0.0);
  for (std::size_t i = 0; i < small.size(); ++i) {
    small[i] = static_cast<double>(i % 2);
  }
  for (std::size_t i = 0; i < large.size(); ++i) {
    large[i] = static_cast<double>(i % 2);
  }
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(large));
  EXPECT_DOUBLE_EQ(ci95_halfwidth({}), 0.0);
}

TEST(MathxTest, NearAbsoluteTolerance) {
  EXPECT_TRUE(near(1.0, 1.05, 0.1));
  EXPECT_FALSE(near(1.0, 1.2, 0.1));
  EXPECT_TRUE(near(-1.0, -1.0, 0.0));
}

TEST(MathxTest, ClampBasics) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(15.0, 0.0, 10.0), 10.0);
  EXPECT_THROW(clamp(0.0, 1.0, -1.0), InvariantError);
}

struct FmodCase {
  double x;
  double m;
  double expected;
};

class PositiveFmodTest : public ::testing::TestWithParam<FmodCase> {};

TEST_P(PositiveFmodTest, ResultInRangeAndCongruent) {
  const auto& c = GetParam();
  const double r = positive_fmod(c.x, c.m);
  EXPECT_NEAR(r, c.expected, 1e-12);
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, c.m);
  // Congruence: (x - r) is an integer multiple of m.
  const double k = (c.x - r) / c.m;
  EXPECT_NEAR(k, std::round(k), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PositiveFmodTest,
    ::testing::Values(FmodCase{5.0, 10.0, 5.0}, FmodCase{15.0, 10.0, 5.0},
                      FmodCase{-5.0, 10.0, 5.0}, FmodCase{-15.0, 10.0, 5.0},
                      FmodCase{0.0, 10.0, 0.0}, FmodCase{-0.25, 1.0, 0.75},
                      FmodCase{10.0, 10.0, 0.0},
                      FmodCase{-10.0, 10.0, 0.0}));

TEST(MathxTest, PositiveFmodRejectsBadModulus) {
  EXPECT_THROW(positive_fmod(1.0, 0.0), InvariantError);
  EXPECT_THROW(positive_fmod(1.0, -1.0), InvariantError);
}

// Regression: a tiny negative remainder used to take the `r += m` branch
// and round up to exactly m, violating the documented [0, m) range (the
// ring road's cell_at then rejected the wrapped position as out of range).
TEST(MathxTest, PositiveFmodTinyNegativeStaysBelowModulus) {
  for (double m : {1.0, 10.0, 24.0, 86400.0}) {
    for (double x : {-1e-18, -1e-20, -5e-16 * m}) {
      const double r = positive_fmod(x, m);
      EXPECT_GE(r, 0.0) << "x=" << x << " m=" << m;
      EXPECT_LT(r, m) << "x=" << x << " m=" << m;
    }
  }
}

TEST(MathxTest, PositiveFmodNormalizesSignedZero) {
  const double r = positive_fmod(-0.0, 10.0);
  EXPECT_EQ(r, 0.0);
  EXPECT_FALSE(std::signbit(r));
  const double wrapped = positive_fmod(-20.0, 10.0);
  EXPECT_FALSE(std::signbit(wrapped));
}

TEST(MathxTest, PositiveFmodTinyNegativeNearMultiple) {
  // x just below an exact multiple of m: the true remainder is just under
  // m; the clamp canonicalizes the unrepresentable case to the wrap point.
  const double r = positive_fmod(std::nextafter(48.0, 0.0), 24.0);
  EXPECT_GE(r, 0.0);
  EXPECT_LT(r, 24.0);
}

TEST(MathxTest, NormalCdfKnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-4);
  EXPECT_NEAR(normal_cdf(3.0), 0.99865, 1e-5);
}

TEST(MathxTest, InverseNormalCdfKnownQuantiles) {
  EXPECT_NEAR(inverse_normal_cdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(inverse_normal_cdf(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.99), 2.326348, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(0.01), -2.326348, 1e-5);
  EXPECT_NEAR(inverse_normal_cdf(1e-6), -4.753424, 1e-4);
}

TEST(MathxTest, InverseNormalRoundTrips) {
  for (double p : {0.001, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999}) {
    EXPECT_NEAR(normal_cdf(inverse_normal_cdf(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(MathxTest, InverseNormalDomainChecked) {
  EXPECT_THROW(inverse_normal_cdf(0.0), InvariantError);
  EXPECT_THROW(inverse_normal_cdf(1.0), InvariantError);
}

}  // namespace
}  // namespace pabr::mathx
