// util::Ring — the flat FIFO replacing std::deque in the estimator's
// per-(prev, next) event histories (DESIGN.md §11). The contract under
// test: strict FIFO order across wrap-around and growth, random-access
// iterators good enough for std::lower_bound, and — at the estimator
// level — eviction at exactly N_quad with answers bitwise identical to
// an estimator that only ever saw the surviving events.
#include "util/ring.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "hoef/estimator.h"
#include "hoef/quadruplet.h"
#include "sim/time.h"

namespace pabr {
namespace {

std::vector<int> contents(const util::Ring<int>& r) {
  return std::vector<int>(r.begin(), r.end());
}

TEST(RingTest, PushPopKeepsFifoOrder) {
  util::Ring<int> r;
  EXPECT_TRUE(r.empty());
  for (int i = 0; i < 10; ++i) r.push_back(i);
  EXPECT_EQ(r.size(), 10u);
  EXPECT_EQ(r.front(), 0);
  EXPECT_EQ(r.back(), 9);
  r.pop_front();
  r.pop_front();
  EXPECT_EQ(r.front(), 2);
  EXPECT_EQ(contents(r), (std::vector<int>{2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(RingTest, WrapAroundPreservesOrder) {
  util::Ring<int> r(4);
  EXPECT_EQ(r.capacity(), 4u);
  for (int i = 0; i < 4; ++i) r.push_back(i);
  // Pop two, push two: the new elements wrap into the freed slots.
  r.pop_front();
  r.pop_front();
  r.push_back(4);
  r.push_back(5);
  EXPECT_EQ(r.capacity(), 4u);  // no growth happened
  EXPECT_EQ(contents(r), (std::vector<int>{2, 3, 4, 5}));
}

TEST(RingTest, GrowthWhileWrappedLinearizes) {
  util::Ring<int> r(4);
  for (int i = 0; i < 4; ++i) r.push_back(i);
  r.pop_front();       // head now mid-array
  r.push_back(4);      // wrapped
  r.push_back(5);      // full -> grows, must relinearize [1..5]
  EXPECT_GT(r.capacity(), 4u);
  EXPECT_EQ(contents(r), (std::vector<int>{1, 2, 3, 4, 5}));
  EXPECT_EQ(r.front(), 1);
  EXPECT_EQ(r.back(), 5);
}

TEST(RingTest, SteadyStateEvictionNeverReallocates) {
  // The estimator's N_quad retention pattern: push one, evict one.
  util::Ring<int> r;
  r.reserve(101);
  const std::size_t cap = r.capacity();
  for (int i = 0; i < 5000; ++i) {
    r.push_back(i);
    while (r.size() > 100) r.pop_front();
  }
  EXPECT_EQ(r.capacity(), cap);
  EXPECT_EQ(r.size(), 100u);
  EXPECT_EQ(r.front(), 4900);
  EXPECT_EQ(r.back(), 4999);
}

TEST(RingTest, IteratorsSupportLowerBound) {
  util::Ring<int> r(8);
  for (int i = 0; i < 8; ++i) r.push_back(2 * i);  // 0 2 4 .. 14
  r.pop_front();
  r.pop_front();
  r.push_back(16);
  r.push_back(18);  // wrapped: 4 6 8 10 12 14 16 18
  const auto it = std::lower_bound(r.begin(), r.end(), 11);
  EXPECT_EQ(*it, 12);
  EXPECT_EQ(it - r.begin(), 4);
  // Random-access arithmetic and iterator -> const_iterator conversion.
  util::Ring<int>::const_iterator cit = r.begin() + 3;
  EXPECT_EQ(*cit, 10);
  EXPECT_EQ(cit[2], 14);
  EXPECT_EQ(r.end() - r.begin(),
            static_cast<std::ptrdiff_t>(r.size()));
}

TEST(RingTest, CopyIsDeepAndOrderPreserving) {
  util::Ring<int> a(4);
  for (int i = 0; i < 6; ++i) a.push_back(i);  // grew once
  a.pop_front();
  util::Ring<int> b(a);
  EXPECT_EQ(contents(b), contents(a));
  b.push_back(99);
  EXPECT_EQ(a.size(), 5u);  // a untouched
  util::Ring<int> c;
  c = a;
  EXPECT_EQ(contents(c), contents(a));
}

TEST(RingTest, EstimatorEvictsAtExactlyNQuad) {
  // Infinite T_int keeps the newest N_quad quadruplets per (prev, next):
  // after any number of records the ring must hold exactly N_quad, the
  // audit must pass, and every answer must be bitwise identical to an
  // estimator that only ever ingested the surviving events.
  hoef::EstimatorConfig cfg;
  cfg.t_int = sim::kInfiniteDuration;
  cfg.n_quad = 5;
  hoef::HandoffEstimator full(0, cfg);
  std::vector<hoef::Quadruplet> events;
  for (int i = 0; i < 23; ++i) {
    const hoef::Quadruplet q{10.0 * (i + 1), 1, 2,
                             5.0 + 7.0 * ((i * 13) % 11)};
    events.push_back(q);
    full.record(q);
  }
  EXPECT_EQ(full.cached_events(), 5u);
  EXPECT_NO_THROW(full.audit());

  hoef::HandoffEstimator tail(0, cfg);
  for (std::size_t i = events.size() - 5; i < events.size(); ++i) {
    tail.record(events[i]);
  }
  const sim::Time t0 = 500.0;
  for (double soj = 0.0; soj < 90.0; soj += 3.7) {
    EXPECT_EQ(full.handoff_probability(t0, 1, 2, soj, 30.0),
              tail.handoff_probability(t0, 1, 2, soj, 30.0))
        << "sojourn " << soj;
  }
  EXPECT_EQ(full.max_sojourn(t0), tail.max_sojourn(t0));
}

}  // namespace
}  // namespace pabr
