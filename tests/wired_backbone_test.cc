// Wired backbone substrate (§2/§7) — link accounting and route logic.
#include "wired/backbone.h"

#include <gtest/gtest.h>

#include "util/check.h"

namespace pabr::wired {
namespace {

TEST(WiredLinkTest, AttachDetachAccounting) {
  Link l(0, "access-1", 10.0);
  EXPECT_EQ(l.name(), "access-1");
  l.attach(1, 4);
  l.attach(2, 1);
  EXPECT_DOUBLE_EQ(l.used(), 5.0);
  EXPECT_TRUE(l.carries(1));
  EXPECT_EQ(l.connection_count(), 2);
  l.detach(1);
  EXPECT_FALSE(l.carries(1));
  EXPECT_DOUBLE_EQ(l.used(), 1.0);
}

TEST(WiredLinkTest, CapacityEnforced) {
  Link l(0, "x", 4.0);
  l.attach(1, 4);
  EXPECT_FALSE(l.can_fit(1));
  EXPECT_THROW(l.attach(2, 1), InvariantError);
  EXPECT_THROW(l.detach(99), InvariantError);
  EXPECT_THROW(Link(0, "bad", 0.0), InvariantError);
}

class BackboneTest : public ::testing::Test {
 protected:
  BackboneTest() : bb_(10, BackboneConfig{20.0, 100.0}) {}
  Backbone bb_;
};

TEST_F(BackboneTest, AdmitOccupiesBothLegs) {
  bb_.admit(3, 1, 4);
  EXPECT_DOUBLE_EQ(bb_.access(3).used(), 4.0);
  EXPECT_DOUBLE_EQ(bb_.uplink().used(), 4.0);
  EXPECT_DOUBLE_EQ(bb_.access(4).used(), 0.0);
}

TEST_F(BackboneTest, RerouteSwapsAccessLeg) {
  bb_.admit(3, 1, 4);
  bb_.reroute(3, 4, 1, 4);
  EXPECT_DOUBLE_EQ(bb_.access(3).used(), 0.0);
  EXPECT_DOUBLE_EQ(bb_.access(4).used(), 4.0);
  EXPECT_DOUBLE_EQ(bb_.uplink().used(), 4.0);
}

TEST_F(BackboneTest, RerouteMayResizeForAdaptiveQos) {
  bb_.admit(3, 1, 4);
  bb_.reroute(3, 4, 1, 2);  // degraded video
  EXPECT_DOUBLE_EQ(bb_.access(4).used(), 2.0);
  EXPECT_DOUBLE_EQ(bb_.uplink().used(), 2.0);
}

TEST_F(BackboneTest, ReleaseFreesBothLegs) {
  bb_.admit(3, 1, 4);
  bb_.release(3, 1);
  EXPECT_DOUBLE_EQ(bb_.access(3).used(), 0.0);
  EXPECT_DOUBLE_EQ(bb_.uplink().used(), 0.0);
}

TEST_F(BackboneTest, ReservationConstrainsNewAdmissionsOnly) {
  bb_.set_reservation(3, 18.0);  // only 2 BU left for new calls
  EXPECT_TRUE(bb_.can_admit(3, 2));
  EXPECT_FALSE(bb_.can_admit(3, 4));
  // Hand-offs ignore the reservation: the full 20 BU are available.
  EXPECT_TRUE(bb_.can_handoff_into(3, /*id=*/7, 4));
  EXPECT_DOUBLE_EQ(bb_.reservation(3), 18.0);
}

TEST_F(BackboneTest, HandoffBlockedByPhysicalAccessCapacity) {
  for (traffic::ConnectionId id = 1; id <= 5; ++id) {
    bb_.admit(3, id, 4);  // access-3 full at 20
  }
  EXPECT_FALSE(bb_.can_handoff_into(3, /*id=*/6, 1));
  EXPECT_TRUE(bb_.can_handoff_into(4, /*id=*/1, 4));
}

TEST_F(BackboneTest, HandoffChargesUplinkOnlyForTheResizeDelta) {
  // Uplink capacity 6: a degraded 2 BU video plus a 3 BU neighbor leave
  // only 1 BU of headroom. Restoring the video to 4 BU at the crossing
  // needs a delta of 2 — the hand-off must be refused up front (not crash
  // inside reroute), while a same-size re-route still passes.
  Backbone bb(10, BackboneConfig{100.0, 6.0});
  bb.admit(3, 1, 2);  // degraded video
  bb.admit(5, 2, 3);
  EXPECT_TRUE(bb.can_handoff_into(4, /*id=*/1, 2));   // same size: swap ok
  EXPECT_FALSE(bb.can_handoff_into(4, /*id=*/1, 4));  // upgrade: 5 > 6-1
  // A connection with no uplink leg gets no credit.
  EXPECT_FALSE(bb.can_handoff_into(4, /*id=*/99, 2));
  EXPECT_TRUE(bb.can_handoff_into(4, /*id=*/99, 1));
}

TEST_F(BackboneTest, SharedUplinkIsACommonPool) {
  Backbone bb(10, BackboneConfig{100.0, 6.0});
  bb.admit(0, 1, 4);
  EXPECT_TRUE(bb.can_admit(1, 2));
  EXPECT_FALSE(bb.can_admit(1, 4));  // uplink has only 2 BU left
}

TEST_F(BackboneTest, Validation) {
  EXPECT_THROW(Backbone(0, BackboneConfig{}), InvariantError);
  EXPECT_THROW(bb_.set_reservation(3, -1.0), InvariantError);
  EXPECT_THROW(bb_.access(10), InvariantError);
  EXPECT_THROW(bb_.can_admit(-1, 1), InvariantError);
}

}  // namespace
}  // namespace pabr::wired
